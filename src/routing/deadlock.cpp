#include "routing/deadlock.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "common/strings.hpp"

namespace sdt::routing {

namespace {

/// Dense channel numbering discovered lazily.
class ChannelIndex {
 public:
  int idOf(Channel c) {
    const auto [it, inserted] = ids_.try_emplace(c, static_cast<int>(channels_.size()));
    if (inserted) channels_.push_back(c);
    return it->second;
  }
  [[nodiscard]] const std::vector<Channel>& channels() const { return channels_; }

 private:
  std::map<Channel, int> ids_;
  std::vector<Channel> channels_;
};

struct State {
  topo::SwitchId sw;
  topo::HostId dst;
  int vc;
  auto operator<=>(const State&) const = default;
};

}  // namespace

DeadlockReport analyzeDeadlock(const topo::Topology& topo,
                               const std::vector<const RoutingAlgorithm*>& algos,
                               int hashProbes) {
  DeadlockReport report;
  ChannelIndex index;
  std::set<std::pair<int, int>> edges;        // channel -> channel
  std::set<std::pair<State, int>> visited;    // (state, inChannel)
  std::vector<std::pair<State, int>> stack;   // worklist

  // Injection: every (source switch with a host, destination host) pair,
  // entering the fabric with VC0 and no held channel (-1).
  for (topo::HostId dst = 0; dst < topo.numHosts(); ++dst) {
    const topo::SwitchId target = topo.hostSwitch(dst);
    for (topo::HostId src = 0; src < topo.numHosts(); ++src) {
      const topo::SwitchId sw = topo.hostSwitch(src);
      if (sw == target) continue;
      stack.push_back({State{sw, dst, 0}, -1});
    }
  }

  while (!stack.empty()) {
    const auto [state, inChannel] = stack.back();
    stack.pop_back();
    if (!visited.insert({state, inChannel}).second) continue;

    for (const RoutingAlgorithm* algo : algos) {
      for (int probe = 0; probe < hashProbes; ++probe) {
        auto hop = algo->nextHop(state.sw, state.dst,
                                 state.vc, static_cast<std::uint64_t>(probe));
        if (!hop) {
          // An unroutable *injection* state means the pair is unreachable
          // (a degraded topology severed every path); it contributes no
          // channel dependencies, so skip it. Failing mid-path — while
          // holding a channel — is a genuine routing dead end.
          if (inChannel < 0) continue;
          report.error = hop.error().message;
          return report;
        }
        const topo::SwitchPort out{state.sw, hop.value().outPort};
        const auto li = topo.linkAt(out);
        if (!li) {
          report.error = strFormat("hop via unused port (switch %d port %d)", state.sw,
                                   hop.value().outPort);
          return report;
        }
        const topo::Link& link = topo.link(*li);
        const int dir = link.a == out ? 0 : 1;
        const int outChannel = index.idOf(Channel{*li, dir, hop.value().vc});
        if (inChannel >= 0) edges.insert({inChannel, outChannel});
        const topo::SwitchPort peer = link.peerOf(state.sw);
        if (peer.sw != topo.hostSwitch(state.dst)) {
          stack.push_back({State{peer.sw, state.dst, hop.value().vc}, outChannel});
        }
        // Ejection at the destination switch holds no further channel.
      }
    }
  }

  // Cycle detection (iterative DFS, three colors).
  const int n = static_cast<int>(index.channels().size());
  std::vector<std::vector<int>> adj(static_cast<std::size_t>(n));
  for (const auto& [from, to] : edges) adj[from].push_back(to);

  std::vector<int> color(static_cast<std::size_t>(n), 0);  // 0 white 1 gray 2 black
  std::vector<int> parent(static_cast<std::size_t>(n), -1);
  for (int start = 0; start < n; ++start) {
    if (color[start] != 0) continue;
    std::vector<std::pair<int, std::size_t>> dfs{{start, 0}};
    color[start] = 1;
    while (!dfs.empty()) {
      auto& [v, next] = dfs.back();
      if (next < adj[v].size()) {
        const int w = adj[v][next++];
        if (color[w] == 0) {
          color[w] = 1;
          parent[w] = v;
          dfs.emplace_back(w, 0);
        } else if (color[w] == 1) {
          // Found a cycle: unwind from v back to w.
          std::vector<Channel> cycle;
          cycle.push_back(index.channels()[w]);
          for (int x = v; x != w && x != -1; x = parent[x]) {
            cycle.push_back(index.channels()[x]);
          }
          std::reverse(cycle.begin(), cycle.end());
          report.cycle = std::move(cycle);
          report.channelsUsed = n;
          report.dependencyEdges = static_cast<int>(edges.size());
          return report;
        }
      } else {
        color[v] = 2;
        dfs.pop_back();
      }
    }
  }
  report.deadlockFree = true;
  report.channelsUsed = n;
  report.dependencyEdges = static_cast<int>(edges.size());
  return report;
}

DeadlockReport analyzeDeadlock(const topo::Topology& topo, const RoutingAlgorithm& algo,
                               int hashProbes) {
  return analyzeDeadlock(topo, std::vector<const RoutingAlgorithm*>{&algo}, hashProbes);
}

}  // namespace sdt::routing
