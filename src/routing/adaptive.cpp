#include "routing/adaptive.hpp"

#include "common/strings.hpp"

namespace sdt::routing {

Result<std::unique_ptr<AdaptiveDragonflyRouting>> AdaptiveDragonflyRouting::create(
    const topo::Topology& topo) {
  // Validate structure by building the minimal router first.
  auto base = DragonflyMinimalRouting::create(topo);
  if (!base) return base.error();
  const int a = base.value()->a();
  const int g = base.value()->g();
  return std::unique_ptr<AdaptiveDragonflyRouting>(
      new AdaptiveDragonflyRouting(topo, a, g));
}

int AdaptiveDragonflyRouting::intermediateGroup(int /*srcGroup*/, int dstGroup,
                                                std::uint64_t flowHash) const {
  // Depends only on (dstGroup, flowHash) so every router along the path
  // recomputes the same group; the injection router skips the detour when
  // the draw lands on its own group.
  int gv = static_cast<int>(flowHash % static_cast<std::uint64_t>(g_));
  if (gv == dstGroup) gv = (gv + 1) % g_;
  return gv;
}

// Channel classes, in dependency order (each hop only moves rightward, so
// the channel dependency graph is acyclic — verified in tests):
//   L2 (src-group locals, VC2)  ->  G0 (Valiant global, VC0)  ->
//   L0 (pre-global locals, VC0) ->  G1 (minimal global, VC1)  ->
//   L1 (post-global locals, VC1)
// Minimal-mode packets start at L0; Valiant packets start at L2 and join
// minimal mode (L0) when their phase-1 global drops them in the
// intermediate group with VC0.
Result<Hop> AdaptiveDragonflyRouting::nextHop(topo::SwitchId sw, topo::HostId dst,
                                              int vc, std::uint64_t flowHash) const {
  const topo::SwitchId target = topo_->hostSwitch(dst);
  const int myGroup = groupOf(sw);
  const int dstGroup = groupOf(target);

  if (vc >= 2) {
    // Valiant phase 1: this only runs inside the source group (the phase-1
    // global hop already demotes to VC0).
    const int gv = intermediateGroup(myGroup, dstGroup, flowHash);
    if (myGroup == gv || myGroup == dstGroup) {
      return minimalStep(sw, target, 0);  // degenerate detour: go minimal
    }
    const auto [gwRouter, gwPort] = globalGateway(myGroup, gv);
    if (gwRouter < 0) return makeError("adaptive: missing global link in phase 1");
    if (gwRouter == sw) return Hop{gwPort, 0};  // G0: phase 1 ends on arrival
    const topo::PortId port = localPort(sw, gwRouter);
    if (port < 0) return makeError("adaptive: no local path to gateway in phase 1");
    return Hop{port, 2};  // L2
  }

  // Minimal mode. The UGAL choice is made once, at the injection router:
  // afterwards the packet is on VC1 (past its global) or has committed to
  // the minimal global gateway, and re-evaluating would desynchronize the
  // flow, so only the (vc==0, remote destination) state weighs the detour.
  if (vc == 0 && myGroup != dstGroup && g_ > 2) {
    auto minimal = minimalStep(sw, target, vc);
    if (!minimal) return minimal;
    const int gv = intermediateGroup(myGroup, dstGroup, flowHash);
    if (gv != myGroup) {
      const auto [gwRouter, gwPort] = globalGateway(myGroup, gv);
      topo::PortId valiantPort = -1;
      if (gwRouter == sw) {
        valiantPort = gwPort;
      } else if (gwRouter >= 0) {
        valiantPort = localPort(sw, gwRouter);
      }
      if (valiantPort >= 0) {
        const double minimalCost = loadOf(sw, minimal.value().outPort);
        const double valiantCost = loadOf(sw, valiantPort);
        // UGAL: the detour roughly doubles the path, so it must be at least
        // ~2x less loaded plus a bias against frivolous detours.
        if (minimalCost > 2.0 * valiantCost + threshold_) {
          return Hop{valiantPort, gwRouter == sw ? 0 : 2};
        }
      }
    }
    return minimal;
  }
  return minimalStep(sw, target, vc);
}

}  // namespace sdt::routing
