#include "routing/mesh_torus.hpp"

#include <cstdio>

#include "common/strings.hpp"

namespace sdt::routing {

DimensionOrderRouting::DimensionOrderRouting(const topo::Topology& topo,
                                             topo::MeshShape shape, bool wrap)
    : RoutingAlgorithm(topo), shape_(shape), wrap_(wrap) {
  portTo_.resize(static_cast<std::size_t>(topo.numSwitches()));
  for (int li = 0; li < topo.numLinks(); ++li) {
    const topo::Link& link = topo.link(li);
    portTo_[link.a.sw].emplace_back(link.b.sw, link.a.port);
    portTo_[link.b.sw].emplace_back(link.a.sw, link.b.port);
  }
}

Result<std::unique_ptr<DimensionOrderRouting>> DimensionOrderRouting::create(
    const topo::Topology& topo) {
  int x = 0, y = 0, z = 0;
  bool wrap = false;
  if (std::sscanf(topo.name().c_str(), "mesh2d-%dx%d", &x, &y) == 2) {
    z = 1;
  } else if (std::sscanf(topo.name().c_str(), "mesh3d-%dx%dx%d", &x, &y, &z) == 3) {
  } else if (std::sscanf(topo.name().c_str(), "torus2d-%dx%d", &x, &y) == 2) {
    z = 1;
    wrap = true;
  } else if (std::sscanf(topo.name().c_str(), "torus3d-%dx%dx%d", &x, &y, &z) == 3) {
    wrap = true;
  } else {
    return makeError(strFormat("topology '%s' is not a generated mesh/torus",
                               topo.name().c_str()));
  }
  if (x * y * z != topo.numSwitches()) {
    return makeError(strFormat("mesh/torus shape %dx%dx%d does not match %d switches",
                               x, y, z, topo.numSwitches()));
  }
  return std::unique_ptr<DimensionOrderRouting>(
      new DimensionOrderRouting(topo, topo::MeshShape{x, y, z}, wrap));
}

topo::PortId DimensionOrderRouting::portToward(topo::SwitchId sw,
                                               topo::SwitchId peer) const {
  for (const auto& [p, port] : portTo_[sw]) {
    if (p == peer) return port;
  }
  return -1;
}

Result<Hop> DimensionOrderRouting::nextHop(topo::SwitchId sw, topo::HostId dst, int vc,
                                           std::uint64_t /*flowHash*/) const {
  const topo::SwitchId target = topo_->hostSwitch(dst);
  const int myCoord[3] = {shape_.xOf(sw), shape_.yOf(sw), shape_.zOf(sw)};
  const int dstCoord[3] = {shape_.xOf(target), shape_.yOf(target), shape_.zOf(target)};
  const int dimSize[3] = {shape_.x, shape_.y, shape_.z};

  for (int dim = 0; dim < 3; ++dim) {
    if (myCoord[dim] == dstCoord[dim]) continue;
    int step;  // +1 or -1 along this dimension
    bool crossesDateline = false;
    if (!wrap_) {
      step = dstCoord[dim] > myCoord[dim] ? 1 : -1;
    } else {
      // Shorter ring direction; ties go positive. The dateline sits on the
      // wraparound link (between coord size-1 and 0).
      const int forward = (dstCoord[dim] - myCoord[dim] + dimSize[dim]) % dimSize[dim];
      const int backward = dimSize[dim] - forward;
      step = forward <= backward ? 1 : -1;
      crossesDateline = (step == 1 && myCoord[dim] == dimSize[dim] - 1) ||
                        (step == -1 && myCoord[dim] == 0);
    }
    int nextCoord[3] = {myCoord[0], myCoord[1], myCoord[2]};
    nextCoord[dim] = (myCoord[dim] + step + dimSize[dim]) % dimSize[dim];
    const topo::SwitchId peer = shape_.index(nextCoord[0], nextCoord[1], nextCoord[2]);
    const topo::PortId port = portToward(sw, peer);
    if (port < 0) {
      return makeError(strFormat("dor: no link %d -> %d (dim %d)", sw, peer, dim));
    }
    if (!wrap_) return Hop{port, vc};
    // Torus VC: vc = 2*dim + class. Entering a new dimension resets the
    // class; crossing this dimension's dateline sets it.
    const int currentClass = (vc / 2 == dim) ? vc % 2 : 0;
    const int nextClass = crossesDateline ? 1 : currentClass;
    return Hop{port, 2 * dim + nextClass};
  }
  return makeError(strFormat("dor: switch %d asked to route to its own host %d", sw, dst));
}

}  // namespace sdt::routing
