#include "routing/shortest_path.hpp"

#include <algorithm>

#include "common/strings.hpp"

namespace sdt::routing {

ShortestPathRouting::ShortestPathRouting(const topo::Topology& topo)
    : RoutingAlgorithm(topo) {
  const topo::Graph g = topo.switchGraph();
  dist_.reserve(static_cast<std::size_t>(g.numVertices()));
  for (int sw = 0; sw < g.numVertices(); ++sw) {
    dist_.push_back(g.bfsDistances(sw));
  }
}

std::vector<topo::PortId> ShortestPathRouting::candidates(topo::SwitchId sw,
                                                          topo::HostId dst) const {
  const topo::SwitchId target = topo_->hostSwitch(dst);
  const std::vector<int>& dist = dist_[target];
  std::vector<topo::PortId> out;
  for (const int li : topo_->linksOf(sw)) {
    const topo::Link& link = topo_->link(li);
    const topo::SwitchPort mine = link.a.sw == sw ? link.a : link.b;
    const topo::SwitchPort peer = link.peerOf(sw);
    if (dist[peer.sw] >= 0 && dist[peer.sw] == dist[sw] - 1) out.push_back(mine.port);
  }
  return out;
}

Result<Hop> ShortestPathRouting::nextHop(topo::SwitchId sw, topo::HostId dst, int vc,
                                         std::uint64_t flowHash) const {
  auto cands = candidates(sw, dst);
  if (cands.empty()) {
    return makeError(strFormat("shortest: no route from switch %d to host %d", sw, dst));
  }
  if (oracle_ && cands.size() > 1) {
    // Keep only the least-loaded candidates; the flow hash still spreads
    // ties so equal-load fabrics behave exactly like plain ECMP.
    double minLoad = oracle_(sw, cands[0]);
    for (std::size_t i = 1; i < cands.size(); ++i) {
      minLoad = std::min(minLoad, oracle_(sw, cands[i]));
    }
    std::vector<topo::PortId> least;
    least.reserve(cands.size());
    for (const topo::PortId port : cands) {
      if (oracle_(sw, port) <= minLoad) least.push_back(port);
    }
    cands = std::move(least);
  }
  return Hop{cands[flowHash % cands.size()], vc};
}

}  // namespace sdt::routing
