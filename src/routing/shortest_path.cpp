#include "routing/shortest_path.hpp"

#include "common/strings.hpp"

namespace sdt::routing {

ShortestPathRouting::ShortestPathRouting(const topo::Topology& topo)
    : RoutingAlgorithm(topo) {
  const topo::Graph g = topo.switchGraph();
  dist_.reserve(static_cast<std::size_t>(g.numVertices()));
  for (int sw = 0; sw < g.numVertices(); ++sw) {
    dist_.push_back(g.bfsDistances(sw));
  }
}

std::vector<topo::PortId> ShortestPathRouting::candidates(topo::SwitchId sw,
                                                          topo::HostId dst) const {
  const topo::SwitchId target = topo_->hostSwitch(dst);
  const std::vector<int>& dist = dist_[target];
  std::vector<topo::PortId> out;
  for (const int li : topo_->linksOf(sw)) {
    const topo::Link& link = topo_->link(li);
    const topo::SwitchPort mine = link.a.sw == sw ? link.a : link.b;
    const topo::SwitchPort peer = link.peerOf(sw);
    if (dist[peer.sw] >= 0 && dist[peer.sw] == dist[sw] - 1) out.push_back(mine.port);
  }
  return out;
}

Result<Hop> ShortestPathRouting::nextHop(topo::SwitchId sw, topo::HostId dst, int vc,
                                         std::uint64_t flowHash) const {
  const auto cands = candidates(sw, dst);
  if (cands.empty()) {
    return makeError(strFormat("shortest: no route from switch %d to host %d", sw, dst));
  }
  return Hop{cands[flowHash % cands.size()], vc};
}

}  // namespace sdt::routing
