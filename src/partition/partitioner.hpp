// Graph partitioning for multi-switch SDT (paper §IV-C).
//
// The paper's Cut(G(E,V), params...) must (1) minimize inter-switch links
// (the cut) and (2) balance per-physical-switch port usage, i.e. minimize
//     alpha * Cut(E_A, E_B) + beta * (1/|E_A| + 1/|E_B|).
// The paper uses METIS; we implement the same multilevel scheme METIS uses:
// heavy-edge-matching coarsening, greedy region-growing initial bisection,
// and Fiduccia–Mattheyses boundary refinement, applied recursively for
// k-way splits. An exact brute-force bisection is provided for tiny graphs
// (used by tests to bound the heuristic's optimality gap).
//
// Balance is measured on *weighted vertex degree* per part: a logical
// switch of degree d consumes d physical fabric ports, so the per-part
// degree sum is exactly the per-physical-switch port load the paper wants
// balanced.
#pragma once

#include <cstdint>
#include <vector>

#include "common/result.hpp"
#include "topo/graph.hpp"

namespace sdt::partition {

/// Which algorithm partitions the graph. kMultilevel is the METIS-style
/// in-memory scheme below; the rest are single-shot streaming heuristics
/// (O(parts) state plus a compact per-vertex table, see streaming.hpp) that
/// scale to topologies too large to refine in memory. kLDG/kFennel stream
/// vertices; kHDRF/kDBH stream edges and replicate cut vertices.
enum class PartitionMethod { kMultilevel, kLDG, kFennel, kHDRF, kDBH };

[[nodiscard]] const char* partitionMethodName(PartitionMethod method);

struct PartitionOptions {
  int parts = 2;
  /// Objective weights (paper's alpha/beta).
  double alpha = 1.0;
  double beta = 4.0;
  /// Hard cap: no part's degree-load may exceed (1+maxImbalance) * ideal.
  /// partitionGraph runs a final repair pass toward this cap and flags the
  /// result (PartitionResult::imbalanceViolated) when the cap is infeasible.
  double maxImbalance = 0.35;
  std::uint64_t seed = 1;
  int refinementPasses = 8;
  /// Stop coarsening when at most this many vertices remain.
  int coarsenTarget = 24;
  PartitionMethod method = PartitionMethod::kMultilevel;
};

struct PartitionResult {
  std::vector<int> assignment;           ///< vertex -> part in [0, parts)
  std::int64_t cutWeight = 0;            ///< total weight of cut edges
  std::vector<std::int64_t> partLoad;    ///< degree-load (≈ ports) per part
  std::vector<std::int64_t> internalEdges;  ///< self-link count per part
  double objective = 0.0;                ///< alpha*cut + beta*sum(1/internal)
  /// True when imbalance() exceeds options.maxImbalance — the documented
  /// hard cap — even after repair (e.g. a single vertex's degree is above
  /// the cap, as with a star hub). The assignment is still the best found;
  /// callers that need the cap as a hard guarantee must check this.
  bool imbalanceViolated = false;

  /// max(partLoad)/ideal - 1; 0 means perfectly balanced.
  [[nodiscard]] double imbalance() const;
};

/// The paper's balance term for one part, beta * 1/|E_i|, which diverges as
/// |E_i| -> 0: a part with no internal edges (or no vertices at all) is an
/// idle physical switch and must never beat a balanced split on cut savings
/// alone. When beta > 0 such a part contributes a *dominating* penalty,
/// sized so that any assignment with fewer internal-edge-free parts always
/// scores strictly better than one with more (every finite objective is at
/// most alpha*totalWeight + beta*parts). Shared by evaluateAssignment and
/// the streaming evaluator so both algorithm families rank candidates
/// identically.
[[nodiscard]] double partBalancePenalty(std::int64_t internalWeight,
                                        std::int64_t totalEdgeWeight, int parts,
                                        const PartitionOptions& options);

/// K-way partition. Dispatches on options.method: the multilevel scheme by
/// default, or one of the streaming heuristics (the graph is replayed as an
/// edge stream; see streaming.hpp for partitioning without materializing a
/// Graph at all). Fails if the graph is empty or parts < 1. Every part is
/// non-empty whenever parts <= numVertices.
Result<PartitionResult> partitionGraph(const topo::Graph& graph,
                                       const PartitionOptions& options = {});

/// Exact minimum-objective bisection by exhaustive search. O(2^n); only
/// valid for graphs with <= 22 vertices. Used to validate the heuristic.
Result<PartitionResult> exactBisection(const topo::Graph& graph,
                                       const PartitionOptions& options = {});

/// Recompute cut/load/objective for a given assignment (shared by both
/// algorithms and by tests that hand-craft assignments).
PartitionResult evaluateAssignment(const topo::Graph& graph,
                                   std::vector<int> assignment, int parts,
                                   const PartitionOptions& options);

}  // namespace sdt::partition
