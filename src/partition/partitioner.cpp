#include "partition/partitioner.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/rng.hpp"
#include "common/strings.hpp"
#include "partition/streaming.hpp"

namespace sdt::partition {

using topo::Graph;
using topo::GraphEdge;

double PartitionResult::imbalance() const {
  if (partLoad.empty()) return 0.0;
  const std::int64_t total = std::accumulate(partLoad.begin(), partLoad.end(), std::int64_t{0});
  const double ideal = static_cast<double>(total) / static_cast<double>(partLoad.size());
  if (ideal <= 0) return 0.0;
  const std::int64_t maxLoad = *std::max_element(partLoad.begin(), partLoad.end());
  return static_cast<double>(maxLoad) / ideal - 1.0;
}

double partBalancePenalty(std::int64_t internalWeight, std::int64_t totalEdgeWeight,
                          int parts, const PartitionOptions& options) {
  if (internalWeight > 0) return 1.0 / static_cast<double>(internalWeight);
  if (options.beta <= 0.0) return 0.0;  // the beta term is off entirely
  // Dominating penalty: beta * penalty must exceed the largest finite
  // objective, alpha*totalWeight + beta*parts (cut <= total weight and each
  // feasible part contributes at most 1 to the beta sum).
  return (options.alpha * static_cast<double>(totalEdgeWeight) +
          options.beta * static_cast<double>(parts) + 1.0) /
         options.beta;
}

PartitionResult evaluateAssignment(const Graph& graph, std::vector<int> assignment,
                                   int parts, const PartitionOptions& options) {
  PartitionResult result;
  result.assignment = std::move(assignment);
  result.partLoad.assign(static_cast<std::size_t>(parts), 0);
  result.internalEdges.assign(static_cast<std::size_t>(parts), 0);
  std::int64_t totalWeight = 0;
  for (const GraphEdge& e : graph.edges()) {
    const int pu = result.assignment[e.u];
    const int pv = result.assignment[e.v];
    totalWeight += e.weight;
    result.partLoad[pu] += e.weight;
    result.partLoad[pv] += e.weight;
    if (pu == pv) {
      result.internalEdges[pu] += e.weight;
    } else {
      result.cutWeight += e.weight;
    }
  }
  double balancePenalty = 0.0;
  for (const std::int64_t internal : result.internalEdges) {
    balancePenalty += partBalancePenalty(internal, totalWeight, parts, options);
  }
  result.objective = options.alpha * static_cast<double>(result.cutWeight) +
                     options.beta * balancePenalty;
  result.imbalanceViolated = result.imbalance() > options.maxImbalance + 1e-9;
  return result;
}

namespace {

/// A coarsening level: the coarse graph plus the fine->coarse vertex map.
struct Level {
  Graph graph;
  std::vector<int> fineToCoarse;           // indexed by the *finer* level's vertices
  std::vector<std::int64_t> vertexWeight;  // degree-load carried by each coarse vertex
};

std::vector<std::int64_t> initialVertexWeights(const Graph& graph) {
  std::vector<std::int64_t> w(static_cast<std::size_t>(graph.numVertices()));
  for (int v = 0; v < graph.numVertices(); ++v) w[v] = graph.weightedDegree(v);
  return w;
}

/// Heavy-edge matching: visit vertices in random order, match each unmatched
/// vertex with its unmatched neighbor across the heaviest edge.
std::vector<int> heavyEdgeMatching(const Graph& graph, Rng& rng) {
  const int n = graph.numVertices();
  std::vector<int> match(static_cast<std::size_t>(n), -1);
  std::vector<int> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(order);
  for (const int v : order) {
    if (match[v] != -1) continue;
    int best = -1;
    std::int64_t bestWeight = -1;
    for (const int e : graph.incidentEdges(v)) {
      const int u = graph.other(e, v);
      if (u == v || match[u] != -1) continue;
      if (graph.edge(e).weight > bestWeight) {
        bestWeight = graph.edge(e).weight;
        best = u;
      }
    }
    if (best != -1) {
      match[v] = best;
      match[best] = v;
    } else {
      match[v] = v;  // stays single
    }
  }
  return match;
}

/// Contract matched pairs into a coarser graph.
Level coarsen(const Graph& fine, const std::vector<std::int64_t>& fineWeights, Rng& rng) {
  const std::vector<int> match = heavyEdgeMatching(fine, rng);
  Level level;
  level.fineToCoarse.assign(static_cast<std::size_t>(fine.numVertices()), -1);
  int next = 0;
  for (int v = 0; v < fine.numVertices(); ++v) {
    if (level.fineToCoarse[v] != -1) continue;
    level.fineToCoarse[v] = next;
    if (match[v] != v) level.fineToCoarse[match[v]] = next;
    ++next;
  }
  level.graph = Graph(next);
  level.vertexWeight.assign(static_cast<std::size_t>(next), 0);
  for (int v = 0; v < fine.numVertices(); ++v) {
    level.vertexWeight[level.fineToCoarse[v]] += fineWeights[v];
  }
  // Merge parallel edges between the same coarse pair.
  std::vector<std::vector<std::pair<int, std::int64_t>>> buckets(
      static_cast<std::size_t>(next));
  for (const GraphEdge& e : fine.edges()) {
    const int cu = level.fineToCoarse[e.u];
    const int cv = level.fineToCoarse[e.v];
    if (cu == cv) continue;  // internal to a matched pair: vanishes
    const auto [lo, hi] = std::minmax(cu, cv);
    buckets[lo].emplace_back(hi, e.weight);
  }
  for (int lo = 0; lo < next; ++lo) {
    auto& bucket = buckets[lo];
    std::sort(bucket.begin(), bucket.end());
    for (std::size_t i = 0; i < bucket.size();) {
      std::size_t j = i;
      std::int64_t weight = 0;
      while (j < bucket.size() && bucket[j].first == bucket[i].first) {
        weight += bucket[j].second;
        ++j;
      }
      level.graph.addEdge(lo, bucket[i].first, weight);
      i = j;
    }
  }
  return level;
}

/// Greedy region-growing bisection on the coarsest graph: BFS-grow side 0
/// from a random seed until it holds ~targetFraction of the total weight.
std::vector<int> growBisection(const Graph& graph,
                               const std::vector<std::int64_t>& weights,
                               double targetFraction, Rng& rng) {
  const int n = graph.numVertices();
  std::vector<int> side(static_cast<std::size_t>(n), 1);
  if (n == 0) return side;
  const std::int64_t total = std::accumulate(weights.begin(), weights.end(), std::int64_t{0});
  const auto target = static_cast<std::int64_t>(targetFraction * static_cast<double>(total));
  std::int64_t grown = 0;
  std::vector<int> frontier;
  std::vector<char> visited(static_cast<std::size_t>(n), 0);
  frontier.push_back(static_cast<int>(rng.below(static_cast<std::uint64_t>(n))));
  visited[frontier[0]] = 1;
  while (grown < target && !frontier.empty()) {
    const int v = frontier.back();
    frontier.pop_back();
    side[v] = 0;
    grown += weights[v];
    for (const int e : graph.incidentEdges(v)) {
      const int u = graph.other(e, v);
      if (!visited[u]) {
        visited[u] = 1;
        frontier.push_back(u);
      }
    }
    // Prefer the frontier vertex with the most neighbors already inside
    // (cheap approximation of highest-gain growth).
    if (!frontier.empty()) {
      std::size_t bestIdx = frontier.size() - 1;
      int bestInside = -1;
      for (std::size_t i = 0; i < frontier.size(); ++i) {
        int inside = 0;
        for (const int e : graph.incidentEdges(frontier[i])) {
          if (side[graph.other(e, frontier[i])] == 0) ++inside;
        }
        if (inside > bestInside) {
          bestInside = inside;
          bestIdx = i;
        }
      }
      std::swap(frontier[bestIdx], frontier.back());
    }
    // Restart growth from an unvisited vertex if the component ran out.
    if (frontier.empty() && grown < target) {
      for (int v2 = 0; v2 < n; ++v2) {
        if (!visited[v2]) {
          visited[v2] = 1;
          frontier.push_back(v2);
          break;
        }
      }
    }
  }
  return side;
}

/// One FM refinement pass over a bisection. Moves boundary vertices in
/// descending gain order, honoring the balance cap; returns true if the
/// objective improved.
bool fmPass(const Graph& graph, const std::vector<std::int64_t>& weights,
            std::vector<int>& side, double targetFraction, double maxImbalance,
            bool repairBalance) {
  const int n = graph.numVertices();
  const std::int64_t total = std::accumulate(weights.begin(), weights.end(), std::int64_t{0});
  std::int64_t load0 = 0;
  for (int v = 0; v < n; ++v) {
    if (side[v] == 0) load0 += weights[v];
  }
  const double ideal0 = targetFraction * static_cast<double>(total);
  const double ideal1 = static_cast<double>(total) - ideal0;
  const auto balancedAfterMove = [&](int v) {
    const std::int64_t newLoad0 = side[v] == 0 ? load0 - weights[v] : load0 + weights[v];
    const double l0 = static_cast<double>(newLoad0);
    const double l1 = static_cast<double>(total - newLoad0);
    return l0 <= ideal0 * (1.0 + maxImbalance) && l1 <= ideal1 * (1.0 + maxImbalance) &&
           l0 >= 0 && l1 >= 0;
  };
  const auto gainOf = [&](int v) {
    std::int64_t gain = 0;  // cut reduction if v switches sides
    for (const int e : graph.incidentEdges(v)) {
      const int u = graph.other(e, v);
      if (u == v) continue;
      gain += side[u] != side[v] ? graph.edge(e).weight : -graph.edge(e).weight;
    }
    return gain;
  };

  bool improved = false;
  std::vector<char> moved(static_cast<std::size_t>(n), 0);
  // Classic FM would use a gain bucket structure; graphs here are small
  // (logical topologies: tens to a few hundred switches), so a linear scan
  // per move is fine and much simpler.
  for (int iter = 0; iter < n; ++iter) {
    int best = -1;
    std::int64_t bestGain = 0;
    for (int v = 0; v < n; ++v) {
      if (moved[v] || !balancedAfterMove(v)) continue;
      const std::int64_t g = gainOf(v);
      if (best == -1 || g > bestGain) {
        best = v;
        bestGain = g;
      }
    }
    if (best == -1 || bestGain <= 0) break;  // only strictly-improving moves
    side[best] = 1 - side[best];
    load0 += side[best] == 0 ? weights[best] : -weights[best];
    moved[best] = 1;
    improved = true;
  }

  // Balance repair: cut-only refinement can leave (or inherit) a lopsided
  // split; drain the heavy side toward its target via the cheapest moves.
  // The paper's beta term wants per-part port loads comparable, which is
  // also what makes the physical-switch port budgets bind evenly.
  for (int iter = 0; iter < n; ++iter) {
    const double frac0 =
        static_cast<double>(load0) / std::max<double>(1.0, static_cast<double>(total));
    const double target0 = targetFraction;
    if (!repairBalance) break;  // pure min-cut mode (beta == 0)
    const double tolerance = 0.05;
    int from;
    if (frac0 > target0 + tolerance) {
      from = 0;
    } else if (frac0 < target0 - tolerance) {
      from = 1;
    } else {
      break;
    }
    int best = -1;
    std::int64_t bestGain = 0;
    for (int v = 0; v < n; ++v) {
      if (side[v] != from) continue;
      const std::int64_t g = gainOf(v);
      if (best == -1 || g > bestGain) {
        best = v;
        bestGain = g;
      }
    }
    if (best == -1) break;
    side[best] = 1 - side[best];
    load0 += side[best] == 0 ? weights[best] : -weights[best];
    improved = true;
  }
  return improved;
}

/// Multilevel bisection of `graph` into sides {0,1} with side 0 targeting
/// `targetFraction` of total degree-load.
std::vector<int> multilevelBisect(const Graph& graph,
                                  const std::vector<std::int64_t>& weights,
                                  double targetFraction, const PartitionOptions& options,
                                  Rng& rng) {
  if (graph.numVertices() <= 1) {
    return std::vector<int>(static_cast<std::size_t>(graph.numVertices()), 0);
  }
  // Coarsening phase.
  std::vector<Level> levels;
  const Graph* current = &graph;
  const std::vector<std::int64_t>* currentWeights = &weights;
  while (current->numVertices() > options.coarsenTarget) {
    Level level = coarsen(*current, *currentWeights, rng);
    if (level.graph.numVertices() >= current->numVertices()) break;  // no progress
    levels.push_back(std::move(level));
    current = &levels.back().graph;
    currentWeights = &levels.back().vertexWeight;
  }
  // Initial partition on the coarsest graph: several random restarts.
  std::vector<int> side;
  std::int64_t bestCut = std::numeric_limits<std::int64_t>::max();
  for (int attempt = 0; attempt < 4; ++attempt) {
    std::vector<int> candidate = growBisection(*current, *currentWeights, targetFraction, rng);
    for (int pass = 0; pass < options.refinementPasses; ++pass) {
      if (!fmPass(*current, *currentWeights, candidate, targetFraction,
                  options.maxImbalance, options.beta > 0.0)) {
        break;
      }
    }
    std::int64_t cut = 0;
    for (const GraphEdge& e : current->edges()) {
      if (candidate[e.u] != candidate[e.v]) cut += e.weight;
    }
    if (cut < bestCut) {
      bestCut = cut;
      side = std::move(candidate);
    }
  }
  // Uncoarsening + refinement.
  for (auto it = levels.rbegin(); it != levels.rend(); ++it) {
    const Graph& fine = (std::next(it) == levels.rend()) ? graph : std::next(it)->graph;
    const std::vector<std::int64_t>& fineWeights =
        (std::next(it) == levels.rend()) ? weights : std::next(it)->vertexWeight;
    std::vector<int> fineSide(static_cast<std::size_t>(fine.numVertices()));
    for (int v = 0; v < fine.numVertices(); ++v) fineSide[v] = side[it->fineToCoarse[v]];
    for (int pass = 0; pass < options.refinementPasses; ++pass) {
      if (!fmPass(fine, fineWeights, fineSide, targetFraction, options.maxImbalance,
                  options.beta > 0.0)) {
        break;
      }
    }
    side = std::move(fineSide);
  }
  return side;
}

/// Ensure side 0 holds at least `need0` vertices and side 1 at least
/// `need1`, stealing boundary vertices from the surplus side by best cut
/// gain (deterministic lowest-index tie-break). multilevelBisect balances
/// *degree load*, so on small or star-like graphs (and whenever beta == 0
/// disables balance repair) it can park every vertex on one side; each side
/// must still hold as many vertices as the parts it will recursively host,
/// or a part downstream is silently stranded empty with partLoad == 0.
void forceMinSideCounts(const Graph& graph, std::vector<int>& side, int need0,
                        int need1) {
  const int n = graph.numVertices();
  int count0 = 0;
  for (const int s : side) count0 += s == 0 ? 1 : 0;
  const auto gainOf = [&](int v) {
    std::int64_t gain = 0;
    for (const int e : graph.incidentEdges(v)) {
      const int u = graph.other(e, v);
      if (u == v) continue;
      gain += side[u] != side[v] ? graph.edge(e).weight : -graph.edge(e).weight;
    }
    return gain;
  };
  while (count0 < need0 || n - count0 < need1) {
    const int from = count0 < need0 ? 1 : 0;
    int best = -1;
    std::int64_t bestGain = 0;
    for (int v = 0; v < n; ++v) {
      if (side[v] != from) continue;
      const std::int64_t g = gainOf(v);
      if (best == -1 || g > bestGain) {
        best = v;
        bestGain = g;
      }
    }
    assert(best != -1 && "surplus side cannot be empty while the other is short");
    side[best] = 1 - side[best];
    count0 += from == 1 ? 1 : -1;
  }
}

/// Recursive k-way: split the vertex set, extract the induced subgraphs,
/// and recurse until every branch is a single part.
void kWay(const Graph& graph, const std::vector<std::int64_t>& weights,
          const std::vector<int>& vertexIds, int parts, int firstPart,
          const PartitionOptions& options, Rng& rng, std::vector<int>& assignment) {
  if (parts == 1) {
    for (const int v : vertexIds) assignment[v] = firstPart;
    return;
  }
  const int leftParts = (parts + 1) / 2;
  const double fraction = static_cast<double>(leftParts) / static_cast<double>(parts);
  std::vector<int> side = multilevelBisect(graph, weights, fraction, options, rng);
  // The top-level parts <= numVertices guarantee must hold per-branch too.
  if (graph.numVertices() >= parts) {
    forceMinSideCounts(graph, side, leftParts, parts - leftParts);
  }

  for (int half = 0; half < 2; ++half) {
    std::vector<int> subIds;
    std::vector<int> globalToSub(static_cast<std::size_t>(graph.numVertices()), -1);
    for (int v = 0; v < graph.numVertices(); ++v) {
      if (side[v] == half) {
        globalToSub[v] = static_cast<int>(subIds.size());
        subIds.push_back(v);
      }
    }
    Graph sub(static_cast<int>(subIds.size()));
    for (const GraphEdge& e : graph.edges()) {
      if (side[e.u] == half && side[e.v] == half) {
        sub.addEdge(globalToSub[e.u], globalToSub[e.v], e.weight);
      }
    }
    std::vector<std::int64_t> subWeights(subIds.size());
    std::vector<int> subVertexIds(subIds.size());
    for (std::size_t i = 0; i < subIds.size(); ++i) {
      subWeights[i] = weights[subIds[i]];
      subVertexIds[i] = vertexIds[subIds[i]];
    }
    const int subParts = half == 0 ? leftParts : parts - leftParts;
    const int subFirst = half == 0 ? firstPart : firstPart + leftParts;
    kWay(sub, subWeights, subVertexIds, subParts, subFirst, options, rng, assignment);
  }
}

/// Final hard-cap repair: maxImbalance is documented as a hard cap, but the
/// recursive bisections only repair toward a per-level tolerance, so the
/// k-way composition can overshoot. Drain the most-loaded part by moving its
/// cheapest boundary vertices (never emptying a part) until the cap holds or
/// no move lowers the maximum load. Returns the (possibly updated)
/// assignment's evaluation; the caller surfaces any residual violation via
/// PartitionResult::imbalanceViolated.
PartitionResult repairImbalance(const Graph& graph, PartitionResult result,
                                const PartitionOptions& options) {
  const int parts = static_cast<int>(result.partLoad.size());
  if (parts < 2) return result;
  const int n = graph.numVertices();
  std::vector<int>& part = result.assignment;
  std::vector<std::int64_t> load = result.partLoad;
  std::vector<int> count(static_cast<std::size_t>(parts), 0);
  for (const int p : part) ++count[p];
  const std::int64_t total = std::accumulate(load.begin(), load.end(), std::int64_t{0});
  const double cap =
      (1.0 + options.maxImbalance) * static_cast<double>(total) / static_cast<double>(parts);
  bool changed = false;
  for (int iter = 0; iter < 8 * n; ++iter) {
    const int heavy = static_cast<int>(
        std::max_element(load.begin(), load.end()) - load.begin());
    if (static_cast<double>(load[heavy]) <= cap + 1e-9) break;
    // Best (vertex, destination) move: must strictly lower the pair's max
    // load; among those, smallest cut increase wins.
    int bestV = -1;
    int bestDest = -1;
    std::int64_t bestGain = 0;
    std::vector<std::int64_t> link(static_cast<std::size_t>(parts), 0);
    for (int v = 0; v < n; ++v) {
      if (part[v] != heavy || count[heavy] <= 1) continue;
      std::fill(link.begin(), link.end(), std::int64_t{0});
      std::int64_t degree = 0;
      for (const int e : graph.incidentEdges(v)) {
        const int u = graph.other(e, v);
        degree += graph.edge(e).weight;
        if (u != v) link[part[u]] += graph.edge(e).weight;
      }
      for (int dest = 0; dest < parts; ++dest) {
        if (dest == heavy || load[dest] + degree >= load[heavy]) continue;
        const std::int64_t gain = link[dest] - link[heavy];  // cut reduction
        if (bestV == -1 || gain > bestGain) {
          bestV = v;
          bestDest = dest;
          bestGain = gain;
        }
      }
    }
    if (bestV == -1) break;  // the heavy part cannot shed anything
    std::int64_t degree = 0;
    for (const int e : graph.incidentEdges(bestV)) degree += graph.edge(e).weight;
    load[heavy] -= degree;
    load[bestDest] += degree;
    --count[heavy];
    ++count[bestDest];
    part[bestV] = bestDest;
    changed = true;
  }
  if (!changed) return result;
  return evaluateAssignment(graph, std::move(result.assignment), parts, options);
}

Result<PartitionResult> multilevelPartition(const Graph& graph,
                                            const PartitionOptions& options) {
  Rng rng(options.seed);
  std::vector<int> assignment(static_cast<std::size_t>(graph.numVertices()), 0);
  std::vector<int> vertexIds(static_cast<std::size_t>(graph.numVertices()));
  std::iota(vertexIds.begin(), vertexIds.end(), 0);
  kWay(graph, initialVertexWeights(graph), vertexIds, options.parts, 0, options, rng,
       assignment);
  PartitionResult result =
      evaluateAssignment(graph, std::move(assignment), options.parts, options);
  if (result.imbalanceViolated) result = repairImbalance(graph, std::move(result), options);
  return result;
}

}  // namespace

const char* partitionMethodName(PartitionMethod method) {
  switch (method) {
    case PartitionMethod::kMultilevel: return "multilevel";
    case PartitionMethod::kLDG: return "ldg";
    case PartitionMethod::kFennel: return "fennel";
    case PartitionMethod::kHDRF: return "hdrf";
    case PartitionMethod::kDBH: return "dbh";
  }
  return "unknown";
}

Result<PartitionResult> partitionGraph(const Graph& graph, const PartitionOptions& options) {
  if (options.parts < 1) return makeError("parts must be >= 1");
  if (graph.numVertices() == 0) return makeError("cannot partition an empty graph");
  if (options.parts > graph.numVertices()) {
    return makeError(strFormat("cannot split %d vertices into %d parts",
                               graph.numVertices(), options.parts));
  }
  if (options.method != PartitionMethod::kMultilevel) {
    return streamingPartitionOfGraph(graph, options);
  }
  return multilevelPartition(graph, options);
}

Result<PartitionResult> exactBisection(const Graph& graph, const PartitionOptions& options) {
  const int n = graph.numVertices();
  if (n == 0) return makeError("cannot partition an empty graph");
  if (n > 22) return makeError("exactBisection is limited to 22 vertices");
  PartitionResult best;
  double bestObjective = std::numeric_limits<double>::infinity();
  for (std::uint32_t mask = 0; mask < (1u << n); ++mask) {
    // Canonical form: vertex 0 always on side 0 (halves the search).
    if (mask & 1u) continue;
    std::vector<int> assignment(static_cast<std::size_t>(n));
    int side1 = 0;
    for (int v = 0; v < n; ++v) {
      assignment[v] = (mask >> v) & 1u;
      side1 += assignment[v];
    }
    if (side1 == 0 || side1 == n) continue;  // both parts must be non-empty
    PartitionResult candidate = evaluateAssignment(graph, std::move(assignment), 2, options);
    if (candidate.imbalance() > options.maxImbalance) continue;
    if (candidate.objective < bestObjective) {
      bestObjective = candidate.objective;
      best = std::move(candidate);
    }
  }
  if (!std::isfinite(bestObjective)) {
    return makeError("no bisection satisfies the balance constraint");
  }
  return best;
}

}  // namespace sdt::partition
