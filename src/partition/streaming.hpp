// Streaming graph partitioning for warehouse-scale projections (ROADMAP
// item 2, paper §IV-C at 10^5-10^6 logical switches).
//
// The multilevel partitioner holds the whole graph plus coarsening levels in
// memory; a warehouse-scale logical topology projected onto hundreds of
// physical switches needs the opposite regime: edges arrive once from a
// topo::EdgeStream, working state is O(parts) plus a compact per-vertex
// table, and quality is recovered with a bounded number of re-streaming
// passes instead of global refinement.
//
// Four classic heuristics behind one interface (the split-merge partitioner
// family's shape: one state object per method, a split() that consumes the
// stream):
//  - kLDG    (Stanton & Kliot): vertex-streaming greedy — place v on the
//            part with the most already-placed neighbors, scaled by the
//            part's remaining capacity.
//  - kFennel (Tsourakakis et al.): vertex-streaming with an interpolated
//            objective — neighbor affinity minus a gamma-power marginal
//            balance cost; subsumes LDG at one end and balanced allocation
//            at the other.
//  - kHDRF   (Petroni et al.): edge-streaming with vertex replication —
//            favors replicating high-(partial-)degree endpoints, keeping
//            low-degree vertices whole; best replication factor on skewed
//            graphs.
//  - kDBH    (Xie et al.): edge-streaming degree-based hashing — hash the
//            lower-degree endpoint; zero scoring state, one deterministic
//            pass.
//
// Vertex streamers emit a partition of vertices (cut semantics identical to
// the multilevel scheme). Edge streamers partition *edges*: a vertex whose
// edges land on several parts is replicated onto each of them, which in SDT
// terms burns extra inter-switch host ports — reported as the replication
// factor (average replicas per vertex, 1.0 = no replication). Their
// PartitionResult view assigns each vertex its weight-majority part so cut
// and imbalance stay comparable across families; with restreamPasses > 0
// that view gets one seeded restream polish (the edge placement optimizes
// replication, not the projected balance) which never worsens the objective
// and leaves the replication metric untouched.
#pragma once

#include <cstdint>

#include "common/result.hpp"
#include "partition/partitioner.hpp"
#include "topo/stream.hpp"

namespace sdt::partition {

struct StreamingOptions {
  /// Must be a streaming method (kMultilevel is rejected: it cannot run in
  /// O(parts) state).
  PartitionMethod method = PartitionMethod::kLDG;
  int parts = 2;
  /// Objective weights for the reported PartitionResult (paper alpha/beta).
  double alpha = 1.0;
  double beta = 4.0;
  /// Hard capacity cap for the vertex streamers and the repair target for
  /// the edge streamers; violations surface via imbalanceViolated.
  double maxImbalance = 0.35;
  std::uint64_t seed = 1;
  /// Bounded polish: replay the stream this many extra times re-assigning
  /// with full knowledge of the previous pass (restreaming LDG/Fennel; HDRF
  /// re-runs with exact instead of partial degrees; DBH is already exact
  /// after one pass). The best pass by objective wins. 0 = single pass.
  int restreamPasses = 2;
  /// Fennel's gamma (> 1); 1.5 is the paper's default.
  double fennelGamma = 1.5;
  /// HDRF's balance weight lambda (>= 0); 1.0 is the paper's default.
  double hdrfLambda = 1.0;
};

struct StreamingResult {
  /// Vertex-assignment view, scored exactly like evaluateAssignment (same
  /// dominating empty-part penalty), so multilevel and streaming runs rank
  /// on one scale.
  PartitionResult partition;
  /// Average replicas per vertex (>= 1.0; exactly 1.0 for vertex streamers).
  /// For edge streamers this is the paper-facing cost of vertex cuts: each
  /// extra replica is a logical switch present on one more physical switch.
  double replicationFactor = 1.0;
  /// Edge visits across all passes (restream passes included) — the
  /// denominator of the edges/sec shootout axis.
  std::int64_t edgesStreamed = 0;
  /// Analytic peak working-state footprint: per-vertex tables + O(parts)
  /// arrays, *excluding* the assignment vector itself that every partitioner
  /// must return. The whole point of streaming: this never includes the
  /// edge set.
  std::int64_t peakStateBytes = 0;
  int passes = 1;
};

/// Partition a streamed graph. Fails on parts < 1, an empty stream,
/// parts > numVertices, or method == kMultilevel.
Result<StreamingResult> partitionStream(const topo::EdgeStream& stream,
                                        const StreamingOptions& options);

/// Score a hand-built vertex assignment against a stream without
/// materializing a Graph: one edge-major replay, O(parts) state. The
/// streaming analog of evaluateAssignment (identical scoring).
PartitionResult evaluateStreamAssignment(const topo::EdgeStream& stream,
                                         std::vector<int> assignment, int parts,
                                         const PartitionOptions& options);

/// partitionGraph's dispatch target for streaming methods: wraps `graph` in
/// a GraphStream, maps PartitionOptions onto StreamingOptions (restream
/// passes default to 2), and returns the vertex-assignment view.
Result<PartitionResult> streamingPartitionOfGraph(const topo::Graph& graph,
                                                  const PartitionOptions& options);

}  // namespace sdt::partition
