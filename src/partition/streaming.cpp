#include "partition/streaming.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>
#include <limits>

#include "common/rng.hpp"
#include "common/strings.hpp"

namespace sdt::partition {

using topo::EdgeStream;
using topo::VertexRecord;

namespace {

/// Deterministic per-vertex hash (DBH's placement function).
std::uint64_t hashVertex(int v, std::uint64_t seed) {
  std::uint64_t s = seed ^ (0x9E3779B97F4A7C15ULL * (static_cast<std::uint64_t>(v) + 1));
  return detail::splitmix64(s);
}

PartitionOptions scoringOptions(const StreamingOptions& options) {
  PartitionOptions po;
  po.parts = options.parts;
  po.alpha = options.alpha;
  po.beta = options.beta;
  po.maxImbalance = options.maxImbalance;
  po.seed = options.seed;
  return po;
}

/// Every part must be non-empty whenever parts <= numVertices — same
/// guarantee the multilevel scheme gives. Steal the lightest vertices (by
/// weighted degree) from the most-populated parts; deterministic.
void ensureNonEmptyParts(std::vector<int>& assignment,
                         const std::vector<std::int64_t>& degree, int parts) {
  const int n = static_cast<int>(assignment.size());
  if (parts > n) return;
  std::vector<int> count(static_cast<std::size_t>(parts), 0);
  for (const int p : assignment) ++count[p];
  for (int p = 0; p < parts; ++p) {
    while (count[p] == 0) {
      int donor = -1;
      int bestV = -1;
      for (int v = 0; v < n; ++v) {
        const int q = assignment[v];
        if (count[q] <= 1) continue;
        if (bestV == -1 || count[q] > count[donor] ||
            (count[q] == count[donor] && degree[v] < degree[bestV])) {
          donor = q;
          bestV = v;
        }
      }
      assert(bestV != -1 && "parts <= n guarantees a donor part with >= 2 vertices");
      assignment[bestV] = p;
      --count[donor];
      ++count[p];
    }
  }
}

// ---------------------------------------------------------------------------
// Vertex streamers: LDG and Fennel share the pass loop and differ only in
// the placement score.

class VertexStreamer {
 public:
  /// `seedView`, when non-empty, is a complete assignment to polish: it is
  /// scored as the first candidate (so polishing can only improve the
  /// objective) and every pass restreams from it instead of placing cold.
  /// Used to rebalance the edge streamers' majority vertex view.
  VertexStreamer(const EdgeStream& stream, const StreamingOptions& options,
                 std::vector<int> seedView = {})
      : stream_(stream),
        seedView_(std::move(seedView)),
        options_(options),
        n_(stream.numVertices()),
        parts_(options.parts),
        assignment_(static_cast<std::size_t>(n_), -1),
        degree_(static_cast<std::size_t>(n_), 0),
        load_(static_cast<std::size_t>(parts_), 0),
        neighborWeight_(static_cast<std::size_t>(parts_), 0) {
    const std::int64_t totalLoad = 2 * stream.totalWeight();
    ideal_ = static_cast<double>(totalLoad) / static_cast<double>(parts_);
    capacity_ = (1.0 + options.maxImbalance) * ideal_;
    // Fennel's alpha, normalized so the total balance cost of a perfectly
    // balanced assignment equals the total edge weight (the classic
    // sqrt(k)*m/n^1.5 normalization expressed in degree-load units).
    fennelLambda_ = static_cast<double>(stream.totalWeight()) /
                    static_cast<double>(parts_);
  }

  StreamingResult run() {
    StreamingResult best;
    best.partition.objective = std::numeric_limits<double>::infinity();
    const int passes = 1 + std::max(0, options_.restreamPasses);
    std::int64_t edgesStreamed = 0;
    const bool seeded = !seedView_.empty();
    if (seeded) {
      // Adopt the seed as pass 0: load per-vertex degrees and part loads,
      // and score it so a polish pass that helps nothing keeps the seed.
      assignment_ = seedView_;
      stream_.forEachVertex([&](const VertexRecord& rec) {
        degree_[rec.v] = rec.weightedDegree;
        load_[assignment_[rec.v]] += rec.weightedDegree;
      });
      edgesStreamed += 2 * stream_.numEdges();
      std::vector<int> view = assignment_;
      ensureNonEmptyParts(view, degree_, parts_);
      best.partition = evaluateStreamAssignment(stream_, std::move(view), parts_,
                                                scoringOptions(options_));
      edgesStreamed += stream_.numEdges();
    }
    for (int pass = 0; pass < passes; ++pass) {
      runPass(seeded || pass > 0);
      edgesStreamed += 2 * stream_.numEdges();  // both endpoints visit
      std::vector<int> view = assignment_;
      ensureNonEmptyParts(view, degree_, parts_);
      PartitionResult scored = evaluateStreamAssignment(
          stream_, std::move(view), parts_, scoringOptions(options_));
      edgesStreamed += stream_.numEdges();  // scoring replay
      if (scored.objective < best.partition.objective) {
        best.partition = std::move(scored);
        best.passes = pass + 1;
      }
    }
    best.edgesStreamed = edgesStreamed;
    best.replicationFactor = 1.0;
    // assignment (4B) + degree table (8B) per vertex; loads + scratch per part.
    best.peakStateBytes =
        static_cast<std::int64_t>(n_) * (4 + 8 + 4) +  // + best-view copy
        static_cast<std::int64_t>(parts_) * (8 + 8);
    return best;
  }

 private:
  void runPass(bool restream) {
    stream_.forEachVertex([&](const VertexRecord& rec) {
      degree_[rec.v] = rec.weightedDegree;
      if (restream) load_[assignment_[rec.v]] -= rec.weightedDegree;
      // Gather affinity toward parts holding already-placed neighbors.
      touched_.clear();
      for (std::size_t i = 0; i < rec.neighbors.size(); ++i) {
        const int u = rec.neighbors[i];
        if (u == rec.v) continue;
        const int p = assignment_[u];
        if (p < 0) continue;
        if (neighborWeight_[p] == 0) touched_.push_back(p);
        neighborWeight_[p] += rec.weights[i];
      }
      const int p = place(rec.weightedDegree);
      assignment_[rec.v] = p;
      load_[p] += rec.weightedDegree;
      for (const int t : touched_) neighborWeight_[t] = 0;
    });
  }

  /// Argmax of the method score over parts under the hard capacity cap;
  /// falls back to the least-loaded part when every part is at capacity.
  int place(std::int64_t vertexLoad) const {
    int best = -1;
    double bestScore = 0.0;
    int leastLoaded = 0;
    for (int p = 0; p < parts_; ++p) {
      if (load_[p] < load_[leastLoaded]) leastLoaded = p;
      if (static_cast<double>(load_[p] + vertexLoad) > capacity_) continue;
      const double score = options_.method == PartitionMethod::kLDG
                               ? ldgScore(p)
                               : fennelScore(p, vertexLoad);
      if (best == -1 || score > bestScore ||
          (score == bestScore && load_[p] < load_[best])) {
        best = p;
        bestScore = score;
      }
    }
    return best == -1 ? leastLoaded : best;
  }

  [[nodiscard]] double ldgScore(int p) const {
    const double slack = 1.0 - static_cast<double>(load_[p]) / capacity_;
    return static_cast<double>(neighborWeight_[p]) * slack;
  }

  [[nodiscard]] double fennelScore(int p, std::int64_t vertexLoad) const {
    const double x = static_cast<double>(load_[p]) / ideal_;
    const double dx = static_cast<double>(vertexLoad) / ideal_;
    const double marginal = std::pow(x + dx, options_.fennelGamma) -
                            std::pow(x, options_.fennelGamma);
    return static_cast<double>(neighborWeight_[p]) - fennelLambda_ * marginal;
  }

  const EdgeStream& stream_;
  std::vector<int> seedView_;
  const StreamingOptions& options_;
  int n_;
  int parts_;
  std::vector<int> assignment_;
  std::vector<std::int64_t> degree_;
  std::vector<std::int64_t> load_;
  std::vector<std::int64_t> neighborWeight_;  // scratch, zeroed via touched_
  std::vector<int> touched_;
  double ideal_ = 0.0;
  double capacity_ = 0.0;
  double fennelLambda_ = 0.0;
};

// ---------------------------------------------------------------------------
// Edge streamers: HDRF and DBH place *edges* and replicate vertices. The
// per-vertex table holds a replica bitset (ceil(parts/64) words), the
// streamed partial degree, and a Boyer-Moore majority sketch that names the
// vertex's weight-majority part without O(parts) counters per vertex.

class EdgeStreamer {
 public:
  EdgeStreamer(const EdgeStream& stream, const StreamingOptions& options)
      : stream_(stream),
        options_(options),
        n_(stream.numVertices()),
        parts_(options.parts),
        words_(static_cast<std::size_t>((parts_ + 63) / 64)),
        degree_(static_cast<std::size_t>(n_), 0),
        weightedDegree_(static_cast<std::size_t>(n_), 0),
        replicas_(static_cast<std::size_t>(n_) * words_, 0),
        majorityPart_(static_cast<std::size_t>(n_), -1),
        majorityCount_(static_cast<std::size_t>(n_), 0),
        load_(static_cast<std::size_t>(parts_), 0) {}

  StreamingResult run() {
    StreamingResult best;
    best.partition.objective = std::numeric_limits<double>::infinity();
    double bestReplication = std::numeric_limits<double>::infinity();
    // DBH needs exact degrees before placing anything: one counting pass.
    // HDRF streams with *partial* degrees on pass 1; each restream re-places
    // the edges with the now-exact degrees.
    std::int64_t edgesStreamed = 0;
    const bool dbh = options_.method == PartitionMethod::kDBH;
    if (dbh) {
      stream_.forEachEdge([&](int u, int v, std::int64_t w) {
        ++degree_[u];
        ++degree_[v];
        weightedDegree_[u] += w;
        weightedDegree_[v] += w;
      });
      edgesStreamed += stream_.numEdges();
    }
    // DBH is deterministic once degrees are known: restreams are a no-op.
    const int passes = dbh ? 1 : 1 + std::max(0, options_.restreamPasses);
    for (int pass = 0; pass < passes; ++pass) {
      resetPlacement();
      const bool exactDegrees = dbh || pass > 0;
      stream_.forEachEdge([&](int u, int v, std::int64_t w) {
        if (!exactDegrees) {  // HDRF pass 1: degrees grow with the stream
          ++degree_[u];
          ++degree_[v];
          weightedDegree_[u] += w;
          weightedDegree_[v] += w;
        }
        const int p = dbh ? placeDbh(u, v) : placeHdrf(u, v);
        placeEdge(u, v, w, p);
      });
      edgesStreamed += stream_.numEdges();
      // Finalize a vertex view: majority part, isolated vertices onto the
      // lightest part.
      std::vector<int> view(static_cast<std::size_t>(n_));
      std::int64_t replicaBits = 0;
      for (int v = 0; v < n_; ++v) {
        int p = majorityPart_[v];
        if (p < 0) {
          p = static_cast<int>(std::min_element(load_.begin(), load_.end()) -
                               load_.begin());
        }
        view[v] = p;
        replicaBits += std::max<std::int64_t>(1, replicaCount(v));
      }
      ensureNonEmptyParts(view, weightedDegree_, parts_);
      const double replication =
          static_cast<double>(replicaBits) / static_cast<double>(n_);
      PartitionResult scored = evaluateStreamAssignment(
          stream_, std::move(view), parts_, scoringOptions(options_));
      edgesStreamed += stream_.numEdges();  // scoring replay
      if (replication < bestReplication ||
          (replication == bestReplication &&
           scored.objective < best.partition.objective)) {
        bestReplication = replication;
        best.partition = std::move(scored);
        best.replicationFactor = replication;
        best.passes = pass + 1;
      }
    }
    best.edgesStreamed = edgesStreamed;
    best.peakStateBytes =
        static_cast<std::int64_t>(n_) *
            (4 + 8 + static_cast<std::int64_t>(words_) * 8 + 4 + 8 + 4) +
        static_cast<std::int64_t>(parts_) * 8;
    return best;
  }

 private:
  void resetPlacement() {
    std::fill(replicas_.begin(), replicas_.end(), std::uint64_t{0});
    std::fill(majorityPart_.begin(), majorityPart_.end(), -1);
    std::fill(majorityCount_.begin(), majorityCount_.end(), std::int64_t{0});
    std::fill(load_.begin(), load_.end(), std::int64_t{0});
  }

  [[nodiscard]] bool hasReplica(int v, int p) const {
    return (replicas_[static_cast<std::size_t>(v) * words_ +
                      static_cast<std::size_t>(p) / 64] >>
            (static_cast<unsigned>(p) % 64)) &
           1u;
  }

  void addReplica(int v, int p) {
    replicas_[static_cast<std::size_t>(v) * words_ + static_cast<std::size_t>(p) / 64] |=
        std::uint64_t{1} << (static_cast<unsigned>(p) % 64);
  }

  [[nodiscard]] std::int64_t replicaCount(int v) const {
    std::int64_t bits = 0;
    for (std::size_t w = 0; w < words_; ++w) {
      bits += std::popcount(replicas_[static_cast<std::size_t>(v) * words_ + w]);
    }
    return bits;
  }

  /// HDRF: argmax of CREP + lambda * CBAL over all parts (Petroni et al.,
  /// eq. 3-5), deterministic lowest-index tie-break.
  int placeHdrf(int u, int v) {
    const double du = static_cast<double>(degree_[u]);
    const double dv = static_cast<double>(degree_[v]);
    const double thetaU = du / (du + dv);
    const double thetaV = 1.0 - thetaU;
    std::int64_t maxLoad = load_[0];
    std::int64_t minLoad = load_[0];
    for (int p = 1; p < parts_; ++p) {
      maxLoad = std::max(maxLoad, load_[p]);
      minLoad = std::min(minLoad, load_[p]);
    }
    const double spread = 1e-9 + static_cast<double>(maxLoad - minLoad);
    int best = 0;
    double bestScore = -std::numeric_limits<double>::infinity();
    for (int p = 0; p < parts_; ++p) {
      double crep = 0.0;
      if (hasReplica(u, p)) crep += 1.0 + (1.0 - thetaU);
      if (hasReplica(v, p)) crep += 1.0 + (1.0 - thetaV);
      const double cbal = options_.hdrfLambda *
                          static_cast<double>(maxLoad - load_[p]) / spread;
      const double score = crep + cbal;
      if (score > bestScore) {
        bestScore = score;
        best = p;
      }
    }
    return best;
  }

  /// DBH: hash the lower-degree endpoint (ties toward the smaller id).
  int placeDbh(int u, int v) const {
    const int pick =
        degree_[u] < degree_[v] ? u : (degree_[v] < degree_[u] ? v : std::min(u, v));
    return static_cast<int>(hashVertex(pick, options_.seed) %
                            static_cast<std::uint64_t>(parts_));
  }

  void placeEdge(int u, int v, std::int64_t w, int p) {
    addReplica(u, p);
    addReplica(v, p);
    load_[p] += w;
    updateMajority(u, p, w);
    if (v != u) updateMajority(v, p, w);
  }

  void updateMajority(int v, int p, std::int64_t w) {
    if (majorityPart_[v] == p) {
      majorityCount_[v] += w;
    } else if (majorityCount_[v] >= w) {
      majorityCount_[v] -= w;
    } else {
      majorityPart_[v] = p;
      majorityCount_[v] = w - majorityCount_[v];
    }
  }

  const EdgeStream& stream_;
  const StreamingOptions& options_;
  int n_;
  int parts_;
  std::size_t words_;
  std::vector<std::int32_t> degree_;
  std::vector<std::int64_t> weightedDegree_;
  std::vector<std::uint64_t> replicas_;
  std::vector<std::int32_t> majorityPart_;
  std::vector<std::int64_t> majorityCount_;
  std::vector<std::int64_t> load_;  // edge weight placed per part
};

}  // namespace

PartitionResult evaluateStreamAssignment(const EdgeStream& stream,
                                         std::vector<int> assignment, int parts,
                                         const PartitionOptions& options) {
  PartitionResult result;
  result.assignment = std::move(assignment);
  result.partLoad.assign(static_cast<std::size_t>(parts), 0);
  result.internalEdges.assign(static_cast<std::size_t>(parts), 0);
  std::int64_t totalWeight = 0;
  stream.forEachEdge([&](int u, int v, std::int64_t w) {
    const int pu = result.assignment[u];
    const int pv = result.assignment[v];
    totalWeight += w;
    result.partLoad[pu] += w;
    result.partLoad[pv] += w;
    if (pu == pv) {
      result.internalEdges[pu] += w;
    } else {
      result.cutWeight += w;
    }
  });
  double balancePenalty = 0.0;
  for (const std::int64_t internal : result.internalEdges) {
    balancePenalty += partBalancePenalty(internal, totalWeight, parts, options);
  }
  result.objective = options.alpha * static_cast<double>(result.cutWeight) +
                     options.beta * balancePenalty;
  result.imbalanceViolated = result.imbalance() > options.maxImbalance + 1e-9;
  return result;
}

Result<StreamingResult> partitionStream(const EdgeStream& stream,
                                        const StreamingOptions& options) {
  if (options.parts < 1) return makeError("parts must be >= 1");
  if (stream.numVertices() == 0) return makeError("cannot partition an empty stream");
  if (options.parts > stream.numVertices()) {
    return makeError(strFormat("cannot split %d vertices into %d parts",
                               stream.numVertices(), options.parts));
  }
  if (options.method == PartitionMethod::kMultilevel) {
    return makeError("kMultilevel is not a streaming method; use partitionGraph");
  }
  if (options.parts == 1) {
    StreamingResult r;
    r.partition = evaluateStreamAssignment(
        stream, std::vector<int>(static_cast<std::size_t>(stream.numVertices()), 0), 1,
        scoringOptions(options));
    r.edgesStreamed = stream.numEdges();
    r.peakStateBytes = static_cast<std::int64_t>(stream.numVertices()) * 4;
    return r;
  }
  switch (options.method) {
    case PartitionMethod::kLDG:
    case PartitionMethod::kFennel:
      return VertexStreamer(stream, options).run();
    case PartitionMethod::kHDRF:
    case PartitionMethod::kDBH: {
      StreamingResult result = EdgeStreamer(stream, options).run();
      if (options.restreamPasses > 0) {
        // Bounded restream polish of the majority vertex view: the edge
        // placement optimizes replication, so its vertex projection can be
        // badly unbalanced (a part with few primary vertices). One seeded
        // LDG restream pass rebalances it; the seed is scored first, so the
        // polished view never loses to the raw majority view. Replication
        // factor stays the edge-placement metric.
        StreamingOptions polish = options;
        polish.method = PartitionMethod::kLDG;
        polish.restreamPasses = 0;  // one pass over the seed
        StreamingResult polished =
            VertexStreamer(stream, polish, result.partition.assignment).run();
        result.edgesStreamed += polished.edgesStreamed;
        result.peakStateBytes = std::max(result.peakStateBytes, polished.peakStateBytes);
        if (polished.partition.objective < result.partition.objective) {
          result.partition = std::move(polished.partition);
          ++result.passes;
        }
      }
      return result;
    }
    case PartitionMethod::kMultilevel:
      break;  // unreachable; handled above
  }
  return makeError("unknown partition method");
}

Result<PartitionResult> streamingPartitionOfGraph(const topo::Graph& graph,
                                                  const PartitionOptions& options) {
  topo::GraphStream stream(graph);
  StreamingOptions so;
  so.method = options.method;
  so.parts = options.parts;
  so.alpha = options.alpha;
  so.beta = options.beta;
  so.maxImbalance = options.maxImbalance;
  so.seed = options.seed;
  so.restreamPasses = 2;
  auto r = partitionStream(stream, so);
  if (!r) return r.error();
  return std::move(r.value().partition);
}

}  // namespace sdt::partition
