// Network builders: assemble a sim::Network either from a logical topology
// (the "full testbed" baseline) or from an SDT projection (the physical
// plant executing controller-generated flow tables).
//
// Invariant shared by both: sim host ids equal topo::HostId, so workloads
// and transports are oblivious to which plane they run on — exactly the
// transparency property the paper claims for SDT (§VIII).
#pragma once

#include <memory>
#include <vector>

#include "openflow/of_switch.hpp"
#include "projection/projection.hpp"
#include "routing/routing.hpp"
#include "sim/network.hpp"

namespace sdt::sim {

struct BuiltNetwork {
  std::unique_ptr<Network> net;
  /// SDT mode only: the programmed switch models (shared with forwarders);
  /// the Network Monitor polls their port/flow counters.
  std::vector<std::shared_ptr<openflow::Switch>> ofSwitches;
};

/// One sim switch per logical switch; forwarding via `routing`. The routing
/// object must outlive the network.
BuiltNetwork buildLogicalNetwork(Simulator& sim, const topo::Topology& topo,
                                 const routing::RoutingAlgorithm& routing,
                                 const NetworkConfig& config);

class EpochConsistencyChecker;

/// One sim switch per *physical* switch, executing `programmedSwitches`
/// (index-aligned with plant.switches; tables already installed by the
/// controller). Self-links and inter-switch links are wired exactly as the
/// projection realized them; `crossbar` adds the sharing overhead per
/// traversal based on how many sub-switches each crossbar hosts.
/// `checker`, when given, observes every flow-table lookup and must outlive
/// the network (per-packet consistency audits during live reconfiguration).
BuiltNetwork buildProjectedNetwork(Simulator& sim, const topo::Topology& topo,
                                   const projection::Projection& projection,
                                   const projection::Plant& plant,
                                   std::vector<std::shared_ptr<openflow::Switch>>
                                       programmedSwitches,
                                   const NetworkConfig& config,
                                   const CrossbarModel& crossbar,
                                   EpochConsistencyChecker* checker = nullptr);

}  // namespace sdt::sim
