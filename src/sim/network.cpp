#include "sim/network.hpp"

#include <algorithm>
#include <cassert>

namespace sdt::sim {

std::uint32_t Network::PacketPool::acquire(Packet&& packet) {
  if (freeHead_ == kNil) {
    const auto base = static_cast<std::uint32_t>(chunks_.size() * kChunkNodes);
    chunks_.push_back(std::make_unique<Node[]>(kChunkNodes));
    Node* chunk = chunks_.back().get();
    for (std::uint32_t i = 0; i < kChunkNodes; ++i) {
      chunk[i].next = i + 1 < kChunkNodes ? base + i + 1 : kNil;
    }
    freeHead_ = base;
  }
  const std::uint32_t idx = freeHead_;
  Node& node = nodeAt(idx);
  freeHead_ = node.next;
  node.packet = std::move(packet);
  node.next = kNil;
  return idx;
}

Packet Network::PacketPool::release(std::uint32_t idx) {
  Node& node = nodeAt(idx);
  Packet packet = std::move(node.packet);
  node.next = freeHead_;
  freeHead_ = idx;
  return packet;
}

int Network::addSwitch(int numPorts, Forwarder forwarder, TimeNs extraLatency) {
  SwitchDev dev;
  dev.ports.resize(static_cast<std::size_t>(numPorts));
  dev.forwarder = std::move(forwarder);
  dev.extraLatency = extraLatency;
  switches_.push_back(std::move(dev));
  switchShard_.push_back(0);
  return static_cast<int>(switches_.size()) - 1;
}

int Network::addHost() {
  hosts_.emplace_back();
  hostShard_.push_back(0);
  return static_cast<int>(hosts_.size()) - 1;
}

void Network::partitionShards() {
  const int k = sim_->numShards();
  if (k <= 1) return;
  const int n = numSwitches();
  for (int sw = 0; sw < n; ++sw) {
    // Contiguous blocks: generated topologies number neighbors contiguously
    // (pods, groups, mesh rows), so block partitioning keeps most links
    // shard-local without knowing the topology family.
    switchShard_[sw] = static_cast<int>(
        (static_cast<std::int64_t>(sw) * k) / std::max(n, 1));
  }
  for (int h = 0; h < numHosts(); ++h) {
    const NodeRef peer = hosts_[h].nic.peer;
    hostShard_[h] = peer.kind == NodeRef::Kind::kSwitch ? switchShard_[peer.idx] : 0;
  }
}

void Network::seedFaultRng(std::uint64_t seed) {
  for (std::size_t s = 0; s < shardState_.size(); ++s) {
    // Shard 0 keeps the legacy stream; other shards get splitmix-salted
    // substreams so no two shards ever consume the same draws.
    const std::uint64_t salt = s * 0x9E3779B97F4A7C15ULL;
    shardState_[s].faultRng = Rng(seed ^ salt);
  }
}

std::uint64_t Network::totalDrops() const {
  std::uint64_t sum = 0;
  for (const ShardState& st : shardState_) sum += st.totalDrops;
  return sum;
}

std::uint64_t Network::faultDrops() const {
  std::uint64_t sum = 0;
  for (const ShardState& st : shardState_) sum += st.faultDrops;
  return sum;
}

std::int64_t Network::peakQueueBytes() const {
  std::int64_t peak = 0;
  for (const ShardState& st : shardState_) peak = std::max(peak, st.peakQueueBytes);
  return peak;
}

void Network::connectSwitches(int sw1, int p1, int sw2, int p2, Gbps speed,
                              TimeNs propDelay) {
  Port& a = switches_[sw1].ports[p1];
  Port& b = switches_[sw2].ports[p2];
  assert(!a.peer.valid() && !b.peer.valid() && "port already wired");
  a.peer = NodeRef{NodeRef::Kind::kSwitch, sw2};
  a.peerPort = p2;
  a.speed = speed;
  a.propDelay = propDelay;
  b.peer = NodeRef{NodeRef::Kind::kSwitch, sw1};
  b.peerPort = p1;
  b.speed = speed;
  b.propDelay = propDelay;
}

void Network::connectHost(int host, int sw, int port, Gbps speed, TimeNs propDelay) {
  Port& nic = hosts_[host].nic;
  Port& sp = switches_[sw].ports[port];
  assert(!nic.peer.valid() && !sp.peer.valid() && "port already wired");
  nic.peer = NodeRef{NodeRef::Kind::kSwitch, sw};
  nic.peerPort = port;
  nic.speed = speed;
  nic.propDelay = propDelay;
  sp.peer = NodeRef{NodeRef::Kind::kHost, host};
  sp.peerPort = 0;
  sp.speed = speed;
  sp.propDelay = propDelay;
}

void Network::setPortUp(int sw, int port, bool up) {
  Port& p = switches_[sw].ports[port];
  if (p.up == up) return;
  p.up = up;
  // Down: start draining the queue into fault drops. Up: resume service.
  kickService(NodeRef{NodeRef::Kind::kSwitch, sw}, port);
}

void Network::setPortStalled(int sw, int port, bool stalled) {
  Port& p = switches_[sw].ports[port];
  if (p.stalled == stalled) return;
  p.stalled = stalled;
  if (!stalled) kickService(NodeRef{NodeRef::Kind::kSwitch, sw}, port);
}

void Network::setPortImpairment(int sw, int port, double dropProb, double corruptProb) {
  Port& p = switches_[sw].ports[port];
  p.dropProb = dropProb;
  p.corruptProb = corruptProb;
}

Network::Port& Network::portOf(NodeRef node, int port) {
  return node.kind == NodeRef::Kind::kSwitch ? switches_[node.idx].ports[port]
                                             : hosts_[node.idx].nic;
}

void Network::injectFromHost(int host, Packet packet) {
  packet.simIngressPort = -1;
  packet.injectedAt = sim_->now();
  // NIC processing happens before the wire. Transports inject from the
  // host's own shard so this is shard-local; top-level injections (tests)
  // are routed to the owner with the lookahead pad.
  const int shard = hostShard_[host];
  sim_->scheduleOn(shard, sim_->crossDelay(shard, config_.nicLatency),
                   [this, host, packet]() mutable {
    enqueueEgress(NodeRef{NodeRef::Kind::kHost, host}, 0, std::move(packet));
  });
}

void Network::setReceiver(int host, std::function<void(const Packet&)> receiver) {
  hosts_[host].receiver = std::move(receiver);
}

void Network::setSniffer(int host, std::function<void(const Packet&)> sniffer) {
  hosts_[host].sniffer = std::move(sniffer);
}

std::int64_t Network::hostQueueBytes(int host) const {
  return hosts_[host].nic.egress.totalBytes;
}

Gbps Network::hostLinkSpeed(int host) const { return hosts_[host].nic.speed; }

std::int64_t Network::switchEgressBytes(int sw, int port) const {
  return switches_[sw].ports[port].egress.totalBytes;
}

const PortCounters& Network::switchPortCounters(int sw, int port) const {
  return switches_[sw].ports[port].counters;
}

void Network::accountIngress(int sw, int inPort, const Packet& packet) {
  Port& p = switches_[sw].ports[inPort];
  const int cls = packet.vc;
  p.ingressBytes[cls] += packet.wireBytes();
  if (config_.pfcEnabled && !p.pauseSent[cls] &&
      p.ingressBytes[cls] > config_.pfcXoffBytes) {
    sendPause(sw, inPort, cls, /*pause=*/true);
  }
}

void Network::releaseIngress(int sw, int inPort, const Packet& packet) {
  Port& p = switches_[sw].ports[inPort];
  const int cls = packet.vc;
  p.ingressBytes[cls] -= packet.wireBytes();
  assert(p.ingressBytes[cls] >= 0);
  if (p.pauseSent[cls] && p.ingressBytes[cls] < config_.pfcXonBytes) {
    sendPause(sw, inPort, cls, /*pause=*/false);
  }
}

void Network::sendPause(int sw, int inPort, int cls, bool pause) {
  Port& p = switches_[sw].ports[inPort];
  p.pauseSent[cls] = pause;
  ++p.counters.pausesSent;
  const NodeRef peer = p.peer;
  const int peerPort = p.peerPort;
  if (!peer.valid()) return;
  // PAUSE frames cross the same cable as data: deliver on the upstream
  // node's shard, padded to the lookahead horizon when that is a different
  // shard (a shard-boundary latency floor, applied identically in serial
  // and parallel runs of the same K).
  const int peerShard = shardOf(peer);
  sim_->scheduleOn(peerShard, sim_->crossDelay(peerShard, config_.pfcCtrlDelay),
                   [this, peer, peerPort, cls, pause]() {
    Port& upstream = portOf(peer, peerPort);
    upstream.egress.paused[cls] = pause;
    if (!pause) kickService(peer, peerPort);
  });
}

void Network::enqueueEgress(NodeRef node, int port, Packet packet) {
  Port& p = portOf(node, port);
  assert(p.peer.valid() && "packet routed out of an unwired port");
  const int cls = packet.vc;
  assert(cls >= 0 && cls < kNumClasses);
  const bool isSwitch = node.kind == NodeRef::Kind::kSwitch;

  ShardState& st = stateFor(node);
  if (isSwitch) {
    if (!config_.pfcEnabled &&
        p.egress.totalBytes + packet.wireBytes() > config_.lossyQueueCapBytes) {
      ++st.totalDrops;
      ++p.counters.drops;
      return;
    }
    if (config_.ecnEnabled && packet.ecnCapable && packet.kind == PacketKind::kData &&
        p.egress.totalBytes > config_.ecnThresholdBytes) {
      packet.ecnMarked = true;
      ++p.counters.ecnMarks;
    }
    if (packet.simIngressPort >= 0) accountIngress(node.idx, packet.simIngressPort, packet);
  }

  p.egress.bytes[cls] += packet.wireBytes();
  p.egress.totalBytes += packet.wireBytes();
  // Peak occupancy is a *switch buffer* invariant (hosts may stage
  // arbitrarily large software send queues).
  if (isSwitch) st.peakQueueBytes = std::max(st.peakQueueBytes, p.egress.totalBytes);
  const std::uint32_t pooled = st.pool.acquire(std::move(packet));
  if (p.egress.tail[cls] == kNil) {
    p.egress.head[cls] = pooled;
  } else {
    st.pool.linkAfter(p.egress.tail[cls], pooled);
  }
  p.egress.tail[cls] = pooled;
  kickService(node, port);
}

void Network::kickService(NodeRef node, int port) {
  Port& p = portOf(node, port);
  if (p.serviceScheduled) return;
  p.serviceScheduled = true;
  const Time delay = std::max<Time>(0, p.busyUntil - sim_->now());
  sim_->schedule(delay, [this, node, port]() { serviceEgress(node, port); });
}

void Network::serviceEgress(NodeRef node, int port) {
  Port& p = portOf(node, port);
  ShardState& st = stateFor(node);
  p.serviceScheduled = false;
  if (p.stalled) return;  // wedged transmitter: backlog builds, counters freeze
  if (!p.up) {
    // Dead fiber: the queue drains into fault drops, one frame per tick, so
    // PFC ingress accounting unwinds exactly as if the frames had been sent.
    int cls = -1;
    for (int c = kNumClasses - 1; c >= 0; --c) {
      if (p.egress.bytes[c] > 0) {
        cls = c;
        break;
      }
    }
    if (cls < 0) return;
    const std::uint32_t pooled = p.egress.head[cls];
    p.egress.head[cls] = st.pool.nextOf(pooled);
    if (p.egress.head[cls] == kNil) p.egress.tail[cls] = kNil;
    const Packet packet = st.pool.release(pooled);
    p.egress.bytes[cls] -= packet.wireBytes();
    p.egress.totalBytes -= packet.wireBytes();
    if (node.kind == NodeRef::Kind::kSwitch && packet.simIngressPort >= 0) {
      releaseIngress(node.idx, packet.simIngressPort, packet);
    }
    ++st.totalDrops;
    ++st.faultDrops;
    ++p.counters.drops;
    ++p.counters.faultDrops;
    kickService(node, port);
    return;
  }
  if (sim_->now() < p.busyUntil) {
    kickService(node, port);
    return;
  }
  // Strict priority: highest eligible class first.
  int cls = -1;
  for (int c = kNumClasses - 1; c >= 0; --c) {
    if (p.egress.bytes[c] > 0 && !p.egress.paused[c]) {
      cls = c;
      break;
    }
  }
  if (cls < 0) return;  // empty or fully paused; enqueue/unpause re-kicks

  const std::uint32_t pooled = p.egress.head[cls];
  p.egress.head[cls] = st.pool.nextOf(pooled);
  if (p.egress.head[cls] == kNil) p.egress.tail[cls] = kNil;
  Packet packet = st.pool.release(pooled);
  p.egress.bytes[cls] -= packet.wireBytes();
  p.egress.totalBytes -= packet.wireBytes();

  if (node.kind == NodeRef::Kind::kSwitch && packet.simIngressPort >= 0) {
    releaseIngress(node.idx, packet.simIngressPort, packet);
  }

  const Time ser = p.speed.serializationNs(packet.wireBytes());
  p.busyUntil = sim_->now() + ser;
  ++p.counters.txPackets;
  p.counters.txBytes += static_cast<std::uint64_t>(packet.wireBytes());

  const NodeRef peer = p.peer;
  const int peerInPort = p.peerPort;
  Time arrivalDelay;
  if (peer.kind == NodeRef::Kind::kSwitch && config_.cutThrough) {
    // Cut-through: downstream starts on the header; the wire still carries
    // the full packet (busyUntil above), so back-to-back pacing is intact.
    arrivalDelay = p.speed.serializationNs(kWireHeaderBytes) + p.propDelay;
  } else {
    arrivalDelay = ser + p.propDelay;
  }
  // The hop to the neighbor is the conservative-lookahead edge: when the
  // peer lives on another shard, the arrival is padded up to the horizon
  // and travels through the shard mailboxes.
  const int peerShard = shardOf(peer);
  sim_->scheduleOn(peerShard, sim_->crossDelay(peerShard, arrivalDelay),
                   [this, peer, peerInPort, packet = std::move(packet)]() mutable {
    if (peer.kind == NodeRef::Kind::kSwitch) {
      arriveAtSwitch(peer.idx, peerInPort, std::move(packet));
    } else {
      deliverToHost(peer.idx, packet);
    }
  });

  // Keep draining.
  kickService(node, port);
}

void Network::arriveAtSwitch(int sw, int inPort, Packet packet) {
  SwitchDev& dev = switches_[sw];
  Port& p = dev.ports[inPort];
  ShardState& st = shardState_[switchShard_[sw]];
  ++p.counters.rxPackets;
  p.counters.rxBytes += static_cast<std::uint64_t>(packet.wireBytes());

  if (!p.up) {  // link went down while the frame was in flight
    ++st.totalDrops;
    ++st.faultDrops;
    ++p.counters.drops;
    ++p.counters.faultDrops;
    return;
  }
  if (p.dropProb > 0.0 && st.faultRng.uniform() < p.dropProb) {
    ++st.totalDrops;
    ++st.faultDrops;
    ++p.counters.drops;
    ++p.counters.faultDrops;
    return;
  }
  if (p.corruptProb > 0.0 && st.faultRng.uniform() < p.corruptProb) {
    packet.corrupted = true;
    ++p.counters.corruptedPackets;
  }

  const ForwardResult decision = dev.forwarder(packet, inPort);
  if (decision.drop || decision.outPort < 0) {
    ++st.totalDrops;
    ++p.counters.drops;
    return;
  }
  packet.vc = static_cast<std::uint8_t>(decision.vc);
  if (decision.epoch != 0) packet.epoch = decision.epoch;
  packet.simIngressPort = inPort;
  const int outPort = decision.outPort;
  const Time latency = config_.switchLatency + dev.extraLatency;
  sim_->schedule(latency, [this, sw, outPort, packet = std::move(packet)]() mutable {
    enqueueEgress(NodeRef{NodeRef::Kind::kSwitch, sw}, outPort, std::move(packet));
  });
}

void Network::deliverToHost(int host, const Packet& packet) {
  HostDev& dev = hosts_[host];
  ++dev.nic.counters.rxPackets;
  dev.nic.counters.rxBytes += static_cast<std::uint64_t>(packet.wireBytes());
  if (packet.corrupted) {  // NIC CRC check rejects the damaged frame
    ShardState& st = shardState_[hostShard_[host]];
    ++st.totalDrops;
    ++st.faultDrops;
    ++dev.nic.counters.drops;
    ++dev.nic.counters.faultDrops;
    return;
  }
  // NIC receive-side latency, then sniffer + transport.
  sim_->schedule(config_.nicLatency, [this, host, packet]() {
    HostDev& d = hosts_[host];
    if (d.sniffer) d.sniffer(packet);
    if (d.receiver) d.receiver(packet);
  });
}

}  // namespace sdt::sim
