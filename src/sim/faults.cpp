#include "sim/faults.hpp"

#include <cassert>

namespace sdt::sim {

const char* faultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kPortDown: return "port-down";
    case FaultKind::kPortUp: return "port-up";
    case FaultKind::kCableCut: return "cable-cut";
    case FaultKind::kCableRestore: return "cable-restore";
    case FaultKind::kSwitchCrash: return "switch-crash";
    case FaultKind::kSwitchReboot: return "switch-reboot";
    case FaultKind::kPortStall: return "port-stall";
    case FaultKind::kPortUnstall: return "port-unstall";
    case FaultKind::kImpair: return "impair";
    case FaultKind::kOverloadStorm: return "overload-storm";
    case FaultKind::kOverloadEnd: return "overload-end";
  }
  return "?";
}

FaultInjector::FaultInjector(Simulator& sim, Network& net, std::uint64_t seed)
    : sim_(&sim), net_(&net), controlRng_(seed ^ 0xC0A70CC5ULL) {
  net_->seedFaultRng(seed);
}

void FaultInjector::arm() {
  for (; armed_ < schedule_.size(); ++armed_) {
    const FaultSpec spec = schedule_[armed_];
    // Cable cuts flip both ends of a link, which may live on different
    // shards; arming any physical fault pins the engine to the serial merge
    // loop so no worker thread races the mutation. Overload faults only
    // poke shard-0 workload generators and keep parallel runs parallel.
    if (faultKindNeedsSerial(spec.kind)) sim_->requireSerial();
    // Fire on the shard that owns the faulted switch so the port mutation is
    // shard-local; overload (and other switch-less) events fire on shard 0,
    // where the serving-workload generators live.
    const int shard = spec.sw >= 0 ? net_->switchShard(spec.sw) : 0;
    sim_->scheduleAtOn(shard, spec.at, [this, spec]() { apply(spec); });
  }
}

void FaultInjector::apply(const FaultSpec& spec) {
  AppliedFault record;
  record.at = sim_->now();
  record.kind = spec.kind;
  record.sw = spec.sw;
  record.port = spec.port;
  switch (spec.kind) {
    case FaultKind::kPortDown:
      net_->setPortUp(spec.sw, spec.port, false);
      break;
    case FaultKind::kPortUp:
      net_->setPortUp(spec.sw, spec.port, true);
      break;
    case FaultKind::kCableCut:
    case FaultKind::kCableRestore: {
      const bool up = spec.kind == FaultKind::kCableRestore;
      net_->setPortUp(spec.sw, spec.port, up);
      // A cable has two ends: the peer port dies (or recovers) with it.
      if (const auto peer = net_->switchPeerOf(spec.sw, spec.port)) {
        net_->setPortUp(peer->first, peer->second, up);
        record.peerSw = peer->first;
        record.peerPort = peer->second;
      }
      break;
    }
    case FaultKind::kSwitchCrash:
      assert(spec.sw >= 0 && spec.sw < static_cast<int>(ofSwitches_.size()) &&
             "attachSwitches() before crashing a switch");
      ofSwitches_[spec.sw]->table().clear();
      break;
    case FaultKind::kSwitchReboot:
      assert(spec.sw >= 0 && spec.sw < static_cast<int>(ofSwitches_.size()) &&
             "attachSwitches() before rebooting a switch");
      ofSwitches_[spec.sw]->reboot();
      break;
    case FaultKind::kPortStall:
      net_->setPortStalled(spec.sw, spec.port, true);
      break;
    case FaultKind::kPortUnstall:
      net_->setPortStalled(spec.sw, spec.port, false);
      break;
    case FaultKind::kImpair:
      net_->setPortImpairment(spec.sw, spec.port, spec.dropProb, spec.corruptProb);
      break;
    case FaultKind::kOverloadStorm:
    case FaultKind::kOverloadEnd:
      record.intensity = spec.intensity;
      record.srcHost = spec.srcHost;
      if (overloadSink_) overloadSink_(spec);
      break;
  }
  trace_.push_back(record);
}

std::function<bool(int)> FaultInjector::controlChannel() {
  return [this](int /*attempt*/) {
    if (controlFailureProb_ <= 0.0) return true;
    return controlRng_.uniform() >= controlFailureProb_;
  };
}

}  // namespace sdt::sim
