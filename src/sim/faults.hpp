// Deterministic fault injection (the "chaos" half of the self-healing loop).
//
// SDT's claim is that a topology *change* is only a flow-table rewrite; this
// module injects the failures that force such rewrites: loopback-cable cuts
// (both peer ports die, paper footnote 2 — the §IV self-link fibers are the
// most numerous and therefore most failure-prone cables in the plant),
// physical-port failures, whole-switch crashes (flow-table wipe, as after a
// power-cycle of a commodity OpenFlow switch), silently wedged transceivers
// (tx counters freeze while backlog builds), and probabilistic frame
// drop/corruption on a port.
//
// Every fault is a typed event scheduled through the slot-arena engine, so a
// run with a fault schedule stays bit-identical across repeats and across
// serial vs. SweepRunner-parallel sweeps (tests/test_faults.cpp holds us to
// that). Probabilistic impairment draws come from the Network's dedicated
// fault RNG, seeded here, consumed in event order.
//
// The injector also models the *control channel* between controller and
// switches: flow-mod installs can transiently fail with a configured
// probability. controller::SdtController::repair() absorbs those through the
// common/retry.hpp policy.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "openflow/of_switch.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"

namespace sdt::sim {

enum class FaultKind : std::uint8_t {
  kPortDown,     ///< one physical port dies (frames black-hole)
  kPortUp,       ///< the port comes back
  kCableCut,     ///< cut the cable at (sw, port): both peer ports go down
  kCableRestore, ///< re-seat the cable: both peer ports come back
  kSwitchCrash,  ///< physical switch loses its flow table (power cycle)
  kSwitchReboot, ///< full power cycle: table, ingress epoch, xid cache, stats
  kPortStall,    ///< transceiver wedges: tx freezes, backlog builds
  kPortUnstall,  ///< the wedge clears
  kImpair,       ///< probabilistic frame drop/corruption at the port
  // kOverload family: traffic-side chaos. These faults do not touch the
  // plant; they drive the workload layer through the overload sink (see
  // setOverloadSink), multiplying flow arrival rates so the fault-soak
  // machinery can storm the fabric the same way it cuts its cables.
  kOverloadStorm,  ///< offered load multiplies by `intensity` (fabric-wide
                   ///< when srcHost < 0, rogue-tenant when srcHost >= 0)
  kOverloadEnd,    ///< the storm ends: rates return to nominal
};

const char* faultKindName(FaultKind kind);

/// One scheduled fault. `sw`/`port` address the *physical* (sim) switch.
struct FaultSpec {
  TimeNs at = 0;
  FaultKind kind = FaultKind::kPortDown;
  int sw = -1;
  int port = -1;           ///< unused for kSwitchCrash
  double dropProb = 0.0;   ///< kImpair only
  double corruptProb = 0.0;///< kImpair only
  double intensity = 1.0;  ///< kOverloadStorm: offered-load multiplier
  int srcHost = -1;        ///< kOverload*: rogue tenant host (-1 = everyone)
};

/// Trace record of one fault as it was applied (peer resolved, time stamped).
struct AppliedFault {
  TimeNs at = 0;
  FaultKind kind = FaultKind::kPortDown;
  int sw = -1;
  int port = -1;
  int peerSw = -1;    ///< cable faults: the far end that was also taken down
  int peerPort = -1;
  double intensity = 1.0;  ///< kOverloadStorm: applied load multiplier
  int srcHost = -1;        ///< kOverload*: rogue tenant (-1 = fabric-wide)

  bool operator==(const AppliedFault&) const = default;
};

class FaultInjector {
 public:
  /// `seed` drives the network's impairment draws and the control-channel
  /// failure model. The injector must outlive arm()'d schedules' execution.
  FaultInjector(Simulator& sim, Network& net, std::uint64_t seed = 0x5D7C0FFEEULL);

  /// Give the injector the controller-programmed switch models so
  /// kSwitchCrash can wipe the right flow table (index == sim switch id).
  void attachSwitches(std::vector<std::shared_ptr<openflow::Switch>> switches) {
    ofSwitches_ = std::move(switches);
  }

  // -- Schedule builders ----------------------------------------------------
  void schedule(FaultSpec spec) { schedule_.push_back(spec); }
  void cutCable(TimeNs at, int sw, int port) {
    schedule({at, FaultKind::kCableCut, sw, port});
  }
  void restoreCable(TimeNs at, int sw, int port) {
    schedule({at, FaultKind::kCableRestore, sw, port});
  }
  void downPort(TimeNs at, int sw, int port) {
    schedule({at, FaultKind::kPortDown, sw, port});
  }
  void upPort(TimeNs at, int sw, int port) {
    schedule({at, FaultKind::kPortUp, sw, port});
  }
  void crashSwitch(TimeNs at, int sw) { schedule({at, FaultKind::kSwitchCrash, sw, -1}); }
  /// Unlike kSwitchCrash (table wipe only, the PR-2 repair scenario), a
  /// reboot also clears the ingress-epoch config and xid cache — the state
  /// crash recovery must read back and repopulate.
  void rebootSwitch(TimeNs at, int sw) {
    schedule({at, FaultKind::kSwitchReboot, sw, -1});
  }
  void stallPort(TimeNs at, int sw, int port) {
    schedule({at, FaultKind::kPortStall, sw, port});
  }
  void unstallPort(TimeNs at, int sw, int port) {
    schedule({at, FaultKind::kPortUnstall, sw, port});
  }
  void impairPort(TimeNs at, int sw, int port, double dropProb, double corruptProb = 0.0) {
    schedule({at, FaultKind::kImpair, sw, port, dropProb, corruptProb});
  }
  // -- Overload chaos (workload-side; delivered through the overload sink) --
  /// Fabric-wide traffic storm: every source multiplies its arrival rate by
  /// `intensity` until a matching kOverloadEnd fires.
  void trafficStorm(TimeNs at, double intensity) {
    FaultSpec spec{at, FaultKind::kOverloadStorm};
    spec.intensity = intensity;
    schedule(spec);
  }
  /// Flash crowd: a storm that ends by itself after `duration`.
  void flashCrowd(TimeNs at, TimeNs duration, double intensity) {
    trafficStorm(at, intensity);
    schedule({at + duration, FaultKind::kOverloadEnd});
  }
  /// One tenant (host) goes rogue for `duration`, multiplying only its own
  /// injection rate.
  void rogueTenant(TimeNs at, TimeNs duration, int srcHost, double intensity) {
    FaultSpec storm{at, FaultKind::kOverloadStorm};
    storm.intensity = intensity;
    storm.srcHost = srcHost;
    schedule(storm);
    FaultSpec end{at + duration, FaultKind::kOverloadEnd};
    end.srcHost = srcHost;
    schedule(end);
  }

  /// Receiver for kOverload* faults (typically a workload driver's rate
  /// scaler). Overload events fire on shard 0, where the serving-workload
  /// generators live; sinks must only touch shard-0-owned state.
  void setOverloadSink(std::function<void(const FaultSpec&)> sink) {
    overloadSink_ = std::move(sink);
  }

  /// Install the schedule into the simulator (call before Simulator::run();
  /// faults scheduled in the past of sim.now() are rejected by the engine).
  /// May be called again after adding more faults; each spec arms once.
  void arm();

  /// Apply one fault immediately (records it in the trace at sim.now()).
  void apply(const FaultSpec& spec);

  /// Every fault applied so far, in application order. Two runs with the
  /// same seed and schedule must produce identical traces.
  [[nodiscard]] const std::vector<AppliedFault>& trace() const { return trace_; }

  // -- Control-channel model ------------------------------------------------
  /// Probability that one modeled flow-mod install attempt fails in flight.
  void setControlFailureProb(double p) { controlFailureProb_ = p; }
  /// Deterministic attempt oracle for retry::retryWithBackoff / repair():
  /// returns true when the attempt succeeds. Draws from the injector's RNG.
  [[nodiscard]] std::function<bool(int)> controlChannel();

 private:
  Simulator* sim_;
  Network* net_;
  std::vector<std::shared_ptr<openflow::Switch>> ofSwitches_;
  std::vector<FaultSpec> schedule_;
  std::size_t armed_ = 0;  ///< schedule_ prefix already handed to the engine
  std::vector<AppliedFault> trace_;
  Rng controlRng_;
  double controlFailureProb_ = 0.0;
  std::function<void(const FaultSpec&)> overloadSink_;
};

/// True for fault kinds that mutate plant state possibly owned by another
/// shard (cable peers, crash tables): arming any of these pins the engine
/// serial. kOverload* events only drive shard-0 workload generators, so an
/// overload-only schedule keeps worker threads alive.
[[nodiscard]] constexpr bool faultKindNeedsSerial(FaultKind kind) {
  return kind != FaultKind::kOverloadStorm && kind != FaultKind::kOverloadEnd;
}

}  // namespace sdt::sim
