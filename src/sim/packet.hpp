// Packet model shared by the data plane and the transports.
#pragma once

#include <cstdint>

#include "common/units.hpp"
#include "openflow/flow_table.hpp"

namespace sdt::sim {

enum class PacketKind : std::uint8_t {
  kData,  ///< transport payload (RoCE segment or TCP segment)
  kAck,   ///< TCP cumulative ack / RoCE message ack
  kCnp,   ///< DCQCN congestion notification packet
};

inline constexpr std::int64_t kWireHeaderBytes = 64;  ///< L2+L3+L4 framing
inline constexpr int kControlClass = 7;  ///< strict-priority class for ACK/CNP
inline constexpr int kNumClasses = 8;

struct Packet {
  std::uint64_t id = 0;
  std::uint64_t flowId = 0;
  int srcHost = -1;
  int dstHost = -1;
  std::int64_t payloadBytes = 0;
  PacketKind kind = PacketKind::kData;
  std::uint8_t vc = 0;       ///< virtual channel == egress queue class for data
  bool ecnCapable = false;
  bool ecnMarked = false;
  bool corrupted = false;      ///< frame damaged in flight (fault injection); NICs drop it
  std::uint64_t seq = 0;       ///< transport byte offset (TCP) / packet index (RoCE)
  std::uint64_t ackSeq = 0;    ///< cumulative ack (TCP)
  std::uint64_t messageId = 0; ///< RoCE message this segment belongs to
  TimeNs injectedAt = 0;
  /// Configuration epoch stamped at the first switch (0 = not yet stamped).
  /// Persists across hops so every lookup on the path runs under the same
  /// epoch during a two-phase reconfiguration (per-packet consistency).
  std::uint32_t epoch = 0;
  /// Sim-internal: ingress port the packet is charged to for PFC accounting
  /// while it waits in the current switch's egress queue (-1 = host-injected).
  int simIngressPort = -1;

  [[nodiscard]] std::int64_t wireBytes() const { return payloadBytes + kWireHeaderBytes; }

  /// Header view for OpenFlow flow-table matching (SDT data plane). Host
  /// addresses double as IPs; the flow id doubles as the L4 port pair so
  /// 5-tuple ECMP-style matching has something to chew on.
  [[nodiscard]] openflow::PacketHeader header(int inPort) const {
    openflow::PacketHeader h;
    h.inPort = inPort;
    h.srcAddr = static_cast<std::uint32_t>(srcHost);
    h.dstAddr = static_cast<std::uint32_t>(dstHost);
    h.srcPort = static_cast<std::uint16_t>(flowId & 0xFFFF);
    h.dstPort = static_cast<std::uint16_t>((flowId >> 16) & 0xFFFF);
    h.protocol = static_cast<std::uint8_t>(kind);
    h.trafficClass = vc;
    h.epoch = epoch;
    return h;
  }
};

}  // namespace sdt::sim
