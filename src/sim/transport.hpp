// Transport layer on top of the packet network.
//
// Two transports, matching the paper's workloads:
//  - RoCE-style message transport with DCQCN rate control (Zhu et al.,
//    SIGCOMM'15): HPC applications and IMB benchmarks send MPI messages
//    over it (lossless fabric, PFC-backpressured, ECN-marked).
//  - TCP-lite byte streams (Reno-flavored slow start / AIMD, go-back-N
//    recovery): the iperf3 incast of the Fig. 12 bandwidth experiment.
//
// The manager owns every flow and registers itself as the receiver on all
// hosts; demux is by packet kind + flow id.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>

#include "sim/network.hpp"

namespace sdt::sim {

struct DcqcnConfig {
  bool enabled = true;
  double gain = 1.0 / 16.0;           ///< alpha EWMA gain (g)
  TimeNs cnpInterval = usToNs(50.0);  ///< min gap between CNPs per flow
  TimeNs rateTimer = usToNs(55.0);    ///< recovery timer period
  int fastRecoverySteps = 5;          ///< timer steps of rate halving recovery
  double additiveIncreaseGbps = 0.5;  ///< Rai after fast recovery
  double minRateGbps = 0.05;
};

struct TransportConfig {
  std::int64_t mtuBytes = 1024;
  DcqcnConfig dcqcn;
  /// Pause injection while the sender NIC already queues this much.
  std::int64_t nicBackpressureBytes = 8 * 1024;
  std::int64_t tcpMaxCwndBytes = 256 * 1024;
  std::int64_t tcpInitialCwndBytes = 2 * 1024;
  TimeNs tcpMinRto = usToNs(200.0);
};

/// Receiver-side completion: (message id, delivery time).
using MessageCallback = std::function<void(std::uint64_t, Time)>;

// Sharding note: RoCE state is split into per-host "lanes" so that a sharded
// run touches each lane only from the shard that owns the host — sender-side
// flow state lives with the source host, receiver-side completion state with
// the destination host, and cross-shard receive registration travels through
// a lookahead-padded event. TCP flows remain a single serial-mode structure
// (documented below); none of the current sharded workloads drive TCP.

class TransportManager {
 public:
  TransportManager(Simulator& sim, Network& net, TransportConfig config);
  ~TransportManager();
  TransportManager(const TransportManager&) = delete;
  TransportManager& operator=(const TransportManager&) = delete;

  /// Send a `bytes`-long message src -> dst on virtual channel `vc`
  /// (RoCE/DCQCN path). `onDelivered` fires when the last byte reaches dst.
  /// Returns the message id.
  std::uint64_t sendMessage(int src, int dst, std::int64_t bytes, int vc,
                            MessageCallback onDelivered);

  /// Start a TCP flow src -> dst carrying `totalBytes` (-1 = run forever,
  /// iperf-style). Returns the flow id.
  std::uint64_t startTcpFlow(int src, int dst, std::int64_t totalBytes = -1,
                             std::function<void(Time)> onComplete = nullptr);

  /// Bytes delivered (application-level) so far on a TCP flow.
  [[nodiscard]] std::int64_t tcpDeliveredBytes(std::uint64_t flowId) const;

  /// Total RoCE data bytes delivered to `host`.
  [[nodiscard]] std::int64_t rdmaDeliveredBytes(int host) const;

  [[nodiscard]] std::uint64_t cnpsSent() const;

  [[nodiscard]] const Network& network() const { return *net_; }

 private:
  struct RdmaPending {
    std::uint64_t messageId;
    std::int64_t bytes;
    std::int64_t sentBytes = 0;
  };

  /// Receiver-side completion bookkeeping, keyed by message id.
  struct RdmaMsgState {
    std::int64_t bytes = 0;
    MessageCallback onDelivered;
  };

  /// Unidirectional RoCE "queue pair" per (src, dst, vc).
  struct RdmaFlow {
    std::uint64_t flowId;
    int src;
    int dst;
    int vc;
    std::deque<RdmaPending> sendQueue;
    bool pumping = false;
    // DCQCN rate-control state.
    double rateGbps;
    double targetGbps;
    double alpha = 1.0;
    int recoverySteps = 0;
    bool timerRunning = false;
    Time lastCnpHandled = -1;
    Time nextSendAt = 0;
  };

  struct RdmaRecvState {
    std::int64_t receivedBytes = 0;  ///< within the current (FIFO) message
  };

  struct TcpFlow {
    std::uint64_t flowId;
    int src;
    int dst;
    std::int64_t totalBytes;
    std::function<void(Time)> onComplete;
    // Sender state.
    std::int64_t nextSeq = 0;
    std::int64_t highestAcked = 0;
    double cwnd;
    double ssthresh;
    int dupAcks = 0;
    bool pumping = false;
    bool completed = false;
    std::uint64_t rtoEpoch = 0;
    // RTT estimation (ns).
    double srtt = 0.0;
    double rttvar = 0.0;
    // Receiver state.
    std::int64_t expectedSeq = 0;
    std::int64_t deliveredBytes = 0;
  };

  void onHostPacket(int host, const Packet& packet);
  // RoCE.
  RdmaFlow& rdmaFlowFor(int src, int dst, int vc);
  void rdmaPump(RdmaFlow& flow);
  void onRdmaData(const Packet& packet);
  void onCnp(RdmaFlow& flow);
  void rdmaTimer(std::uint64_t flowId);
  // TCP.
  void tcpPump(TcpFlow& flow);
  void onTcpData(TcpFlow& flow, const Packet& packet);
  void onTcpAck(TcpFlow& flow, const Packet& packet);
  void tcpArmRto(TcpFlow& flow);
  [[nodiscard]] Time tcpRto(const TcpFlow& flow) const;

  Simulator* sim_;
  Network* net_;
  TransportConfig config_;
  double hostLineRateGbps_ = 10.0;

  /// All RoCE state a single host owns. A lane is only ever touched from the
  /// shard the host lives on, so sharded runs need no locks here.
  struct HostLane {
    std::map<std::uint64_t, RdmaFlow> rdmaFlows;  ///< flows sourced by this host
    std::map<std::pair<std::uint64_t, std::uint64_t>, RdmaRecvState>
        rdmaRecv;                                      ///< this host as receiver
    std::map<std::uint64_t, RdmaMsgState> rdmaMsgState;  ///< by message id
    std::map<std::uint64_t, Time> cnpLastSent;           ///< by flow id
    std::int64_t rdmaDelivered = 0;
    std::uint64_t nextMessageId = 1;
    std::uint64_t nextPacketId = 1;
    std::uint64_t cnpsSent = 0;
  };

  /// Message/packet ids are host-tagged so per-lane counters never collide:
  /// `(host+1) << 40 | n`. Ids are opaque labels — nothing orders on them.
  static std::uint64_t hostTaggedId(int host, std::uint64_t n) {
    return (static_cast<std::uint64_t>(host) + 1) << 40 | n;
  }
  /// Recover the source host from an RDMA flow id (see rdmaFlowId()).
  static int rdmaFlowSrc(std::uint64_t flowId) {
    return static_cast<int>((flowId >> 22) & 0x3FFFF);
  }

  std::vector<HostLane> lanes_;  ///< indexed by host id

  // TCP is serial-mode only: flow creation and demux share this one map, so
  // TCP workloads must run with a single worker (SDT_SIM_WORKERS=1).
  std::map<std::uint64_t, TcpFlow> tcpFlows_;
  std::uint64_t nextTcpFlow_ = 1;
};

}  // namespace sdt::sim
