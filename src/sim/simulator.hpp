// Discrete-event simulation core.
//
// The paper's evaluation baseline is a self-built event-driven simulator
// combining BookSim and SST/Macro features (§VI-A2); this is our equivalent.
// Single-threaded by design: determinism matters more than parallel speed
// for an evaluation substrate, and every experiment seeds its own engine
// (testbed::SweepRunner parallelizes across engines, never within one).
//
// Hot-path layout: the pending-event set is a hand-rolled binary min-heap of
// 16-byte {when, seq|slot} records (the FIFO sequence number and the arena
// slot share one word; seq occupies the high bits, so same-time ordering is
// decided by seq alone, exactly as before). The callables themselves live in
// an index-stable slot arena (chunked, never reallocated) with free-list
// reuse and small-buffer-optimized inline storage. Steady-state scheduling
// therefore performs zero heap allocations: data-plane closures (a Packet by
// value plus a couple of ids) fit the inline buffer, and drained slots are
// recycled. Pop uses the bottom-up "hole" technique (walk the min-child path
// to a leaf, then bubble the displaced last element back up) — about half
// the comparisons of a textbook sift-down. Ordering is bit-identical to the
// previous std::priority_queue engine: earliest `when` first, FIFO (`seq`)
// among same-time events.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/units.hpp"

namespace sdt::sim {

using Time = TimeNs;

class Simulator {
 public:
  Simulator() = default;
  ~Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] Time now() const { return now_; }

  /// Schedule `fn` at now() + delay (delay >= 0).
  template <typename F>
  void schedule(Time delay, F&& fn) {
    scheduleAt(now_ + delay, std::forward<F>(fn));
  }

  template <typename F>
  void scheduleAt(Time when, F&& fn) {
    assert(when >= now_ && "cannot schedule into the past");
    using Fn = std::decay_t<F>;
    const std::uint32_t idx = acquireSlot();
    Slot& s = slotAt(idx);
    if constexpr (sizeof(Fn) <= kInlineBytes && alignof(Fn) <= alignof(std::max_align_t)) {
      ::new (static_cast<void*>(s.buf)) Fn(std::forward<F>(fn));
      s.dispatch = [](Slot& slot, SlotOp op) {
        Fn* f = std::launder(reinterpret_cast<Fn*>(slot.buf));
        if (op == SlotOp::kRunAndDestroy) (*f)();
        f->~Fn();
      };
    } else {
      // Oversized closure: spill to the heap, park the pointer in buf.
      Fn* f = new Fn(std::forward<F>(fn));
      std::memcpy(s.buf, &f, sizeof(f));
      s.dispatch = [](Slot& slot, SlotOp op) {
        Fn* f;
        std::memcpy(&f, slot.buf, sizeof(f));
        if (op == SlotOp::kRunAndDestroy) (*f)();
        delete f;
      };
    }
    push(when, idx);
  }

  /// Run until the queue drains or stop() is called. Returns final time.
  Time run();

  /// Run until simulated time `deadline` (events at exactly `deadline` run).
  Time runUntil(Time deadline);

  void stop() { stopped_ = true; }

  [[nodiscard]] std::uint64_t eventsProcessed() const { return processed_; }
  [[nodiscard]] bool empty() const { return heap_.empty(); }

  /// Arena capacity high-water mark (slots ever allocated); perf introspection.
  [[nodiscard]] std::size_t arenaCapacity() const { return chunks_.size() * kChunkSlots; }

 private:
  /// Inline closure storage. Sized so the data plane's largest closure
  /// (a Packet by value + `this` + port ids, 96 bytes today) stays off the
  /// heap while a Slot fills exactly two cache lines.
  static constexpr std::size_t kInlineBytes = 112;
  static constexpr std::size_t kChunkSlots = 256;
  static constexpr std::uint32_t kNoSlot = 0xFFFFFFFFu;
  /// Low bits of HeapItem::seqSlot hold the arena slot; the high 40 bits
  /// hold the FIFO sequence number (2^40 events per engine instance; an
  /// hour-long run at 100M events/s — asserted in push()).
  static constexpr unsigned kSlotBits = 24;
  static constexpr std::uint64_t kSlotMask = (1ULL << kSlotBits) - 1;

  /// What the slot's type-erased dispatcher should do; a single fused
  /// function pointer replaces separate invoke/destroy thunks so the hot
  /// path pays one indirect call per event, not two.
  enum class SlotOp : std::uint8_t {
    kRunAndDestroy,  ///< runOne(): execute the closure, then destroy it
    kDestroyOnly,    ///< ~Simulator(): discard a never-run pending closure
  };

  struct Slot {
    void (*dispatch)(Slot&, SlotOp) = nullptr;
    std::uint32_t nextFree = kNoSlot;
    alignas(std::max_align_t) unsigned char buf[kInlineBytes];
  };
  static_assert(sizeof(Slot) == 128, "a Slot should fill two cache lines");

  struct HeapItem {
    Time when;
    std::uint64_t seqSlot;  ///< seq << kSlotBits | slot; seq breaks when-ties

    [[nodiscard]] std::uint32_t slot() const {
      return static_cast<std::uint32_t>(seqSlot & kSlotMask);
    }
  };
  static_assert(sizeof(HeapItem) == 16);

  /// True when `a` fires after `b` — the exact ordering the engine promises.
  /// Sequence numbers are unique, so comparing the combined seqSlot word is
  /// decided entirely by the seq bits: FIFO among same-time events. Bitwise
  /// (not short-circuit) ops: the outcome is data-dependent coin-flip in the
  /// heap walks, so flag arithmetic beats a mispredicted branch.
  [[nodiscard]] static bool later(const HeapItem& a, const HeapItem& b) {
    return (a.when > b.when) | ((a.when == b.when) & (a.seqSlot > b.seqSlot));
  }

  Slot& slotAt(std::uint32_t idx) {
    return chunks_[idx / kChunkSlots][idx % kChunkSlots];
  }
  std::uint32_t acquireSlot();
  void releaseSlot(std::uint32_t idx);
  void push(Time when, std::uint32_t slot);
  HeapItem popTop();
  bool runOne();

  std::vector<std::unique_ptr<Slot[]>> chunks_;  ///< index-stable event arena
  std::uint32_t freeHead_ = kNoSlot;
  std::vector<HeapItem> heap_;  ///< binary min-heap over (when, seq)
  Time now_ = 0;
  std::uint64_t nextSeq_ = 0;
  std::uint64_t processed_ = 0;
  bool stopped_ = false;
};

}  // namespace sdt::sim
