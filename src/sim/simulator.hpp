// Discrete-event simulation core.
//
// The paper's evaluation baseline is a self-built event-driven simulator
// combining BookSim and SST/Macro features (§VI-A2); this is our equivalent.
// Single-threaded by design: determinism matters more than parallel speed
// for an evaluation substrate, and every experiment seeds its own engine.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/units.hpp"

namespace sdt::sim {

using Time = TimeNs;

class Simulator {
 public:
  [[nodiscard]] Time now() const { return now_; }

  /// Schedule `fn` at now() + delay (delay >= 0).
  void schedule(Time delay, std::function<void()> fn) {
    scheduleAt(now_ + delay, std::move(fn));
  }

  void scheduleAt(Time when, std::function<void()> fn);

  /// Run until the queue drains or stop() is called. Returns final time.
  Time run();

  /// Run until simulated time `deadline` (events at exactly `deadline` run).
  Time runUntil(Time deadline);

  void stop() { stopped_ = true; }

  [[nodiscard]] std::uint64_t eventsProcessed() const { return processed_; }
  [[nodiscard]] bool empty() const { return queue_.empty(); }

 private:
  struct Event {
    Time when;
    std::uint64_t seq;  ///< FIFO tie-break for same-time events
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      return a.when != b.when ? a.when > b.when : a.seq > b.seq;
    }
  };

  bool runOne();

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  Time now_ = 0;
  std::uint64_t nextSeq_ = 0;
  std::uint64_t processed_ = 0;
  bool stopped_ = false;
};

}  // namespace sdt::sim
