// Discrete-event simulation core, sharded.
//
// The paper's evaluation baseline is a self-built event-driven simulator
// combining BookSim and SST/Macro features (§VI-A2); this is our equivalent.
// Historically single-threaded; it now supports conservative (YAWNS-style)
// parallelism *inside* one run: model objects are partitioned into shards,
// each shard owns a private slot arena + binary min-heap + FIFO sequence
// space, and shards execute concurrently in barrier-synchronized windows
// whose width is the engine lookahead (the minimum cross-shard latency the
// model guarantees — see crossDelay()). Cross-shard events travel through
// per-shard-pair mailboxes drained at window boundaries.
//
// Determinism contract (the whole point of the design):
//   - Every event carries the key (when, senderShard, senderSeq), where the
//     sender is the shard whose event scheduled it (top-level schedules
//     adopt the destination shard) and senderSeq is a per-shard monotone
//     counter bumped on *every* schedule call from that shard. Keys are
//     totally ordered and assigned identically no matter how many worker
//     threads run, because each shard replays its own events in key order.
//   - Serial mode (workers == 1) executes the global key order via a K-way
//     merge over the shard heaps. Parallel mode (workers > 1) executes each
//     shard's local key order inside lookahead windows; with model state
//     disjoint per shard and cross-shard delays >= lookahead, the two modes
//     are bit-identical at fixed K. With K == 1 the key layout collapses to
//     the legacy (when, seq) engine exactly, bit for bit.
//   - lookahead == 0 (a degenerate horizon, e.g. zero-latency cross-shard
//     links) disables windows: the run falls back to the serial merge loop
//     (lockstep), never deadlocks.
//
// Hot-path layout per shard is the proven serial design: a hand-rolled
// binary min-heap of 16-byte {when, key|slot} records over an index-stable
// chunked slot arena with free-list reuse and small-buffer-optimized inline
// closures; pop uses bottom-up hole deletion. Steady-state scheduling does
// zero heap allocations. The default-constructed engine reads SDT_SHARDS /
// SDT_SIM_WORKERS so existing call sites (testbed, tests, benches) opt into
// sharding without code changes; testbed::SweepRunner still parallelizes
// across engines as before — the two compose.
#pragma once

#include <atomic>
#include <barrier>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <deque>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/units.hpp"

namespace sdt::sim {

using Time = TimeNs;

class Simulator {
 public:
  // -- Event-key bit budget (explicit: per-shard seq spaces shrank it) ------
  /// Low bits of a key word address the destination arena slot.
  static constexpr unsigned kSlotBits = 24;
  /// Middle bits: per-sender-shard FIFO sequence number. 2^34 schedule calls
  /// per shard per engine instance (~30 min of one shard sustaining 10M
  /// schedules/s) — checked at every push, not assumed.
  static constexpr unsigned kSeqBits = 34;
  /// High bits: the sender shard id.
  static constexpr unsigned kShardBits = 6;
  static_assert(kSlotBits + kSeqBits + kShardBits == 64, "key must fill one word");
  static constexpr std::uint64_t kSlotMask = (1ULL << kSlotBits) - 1;
  static constexpr std::uint64_t kMaxSeqPerShard = 1ULL << kSeqBits;
  static constexpr int kMaxShards = 1 << kShardBits;

  /// Canonical event-ordering key: (when, shard, seq) compares as (when,
  /// packKey) because shard occupies the high bits. Slot bits never decide
  /// an ordering ((shard, seq) is unique), they just ride along. With
  /// shard == 0 this is exactly the legacy seq<<kSlotBits|slot layout.
  [[nodiscard]] static constexpr std::uint64_t packKey(int shard, std::uint64_t seq,
                                                       std::uint32_t slot) {
    return (static_cast<std::uint64_t>(shard) << (kSeqBits + kSlotBits)) |
           (seq << kSlotBits) | slot;
  }
  [[nodiscard]] static constexpr int keyShard(std::uint64_t key) {
    return static_cast<int>(key >> (kSeqBits + kSlotBits));
  }
  [[nodiscard]] static constexpr std::uint64_t keySeq(std::uint64_t key) {
    return (key >> kSlotBits) & (kMaxSeqPerShard - 1);
  }
  [[nodiscard]] static constexpr std::uint32_t keySlot(std::uint64_t key) {
    return static_cast<std::uint32_t>(key & kSlotMask);
  }

  /// Shard/worker counts from SDT_SHARDS / SDT_SIM_WORKERS (both default 1).
  Simulator();
  /// Explicit topology-independent configuration: `shards` event domains,
  /// run by `workers` threads (workers > 1 means one thread per shard;
  /// workers <= 1 means the deterministic serial merge loop).
  explicit Simulator(int shards, int workers = 1);
  ~Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Environment defaults used by the default constructor (bench reporting).
  [[nodiscard]] static int envShards();
  [[nodiscard]] static int envWorkers();

  [[nodiscard]] Time now() const {
    const ExecCtx& ctx = tlsCtx();
    return ctx.sim == this ? shards_[ctx.shard].now : globalNow_;
  }
  [[nodiscard]] int numShards() const { return static_cast<int>(shards_.size()); }
  [[nodiscard]] int numWorkers() const { return workers_; }
  /// Shard of the currently executing event (0 outside any event — the
  /// pre-run/top-level context is treated as shard 0).
  [[nodiscard]] int currentShard() const {
    const ExecCtx& ctx = tlsCtx();
    return ctx.sim == this ? ctx.shard : 0;
  }

  /// Conservative horizon: every cross-shard event must be scheduled at
  /// least this far in the future (crossDelay() enforces it model-side).
  /// 0 disables parallel windows (serial lockstep fallback).
  void setLookahead(Time lookahead) {
    assert(lookahead >= 0);
    lookahead_ = lookahead;
  }
  [[nodiscard]] Time lookahead() const { return lookahead_; }

  /// Pad `delay` so an event sent from the current shard to `destShard`
  /// respects the lookahead horizon. Same-shard delays pass through
  /// untouched, so a 1-shard engine is unaffected. The padding is a pure
  /// function of (currentShard, destShard, delay): serial and parallel runs
  /// of the same K apply it identically, which is what keeps them
  /// bit-identical.
  [[nodiscard]] Time crossDelay(int destShard, Time delay) const {
    if (destShard == currentShard()) return delay;
    return delay < lookahead_ ? lookahead_ : delay;
  }

  /// Schedule `fn` at now() + delay (delay >= 0) on the current shard.
  template <typename F>
  void schedule(Time delay, F&& fn) {
    const int shard = currentShard();
    scheduleAtOn(shard, now() + delay, std::forward<F>(fn));
  }

  template <typename F>
  void scheduleAt(Time when, F&& fn) {
    scheduleAtOn(currentShard(), when, std::forward<F>(fn));
  }

  /// Schedule onto a specific shard. Cross-shard calls during a parallel
  /// window must land at or beyond the window end — schedule through
  /// crossDelay() to guarantee it.
  template <typename F>
  void scheduleOn(int shard, Time delay, F&& fn) {
    scheduleAtOn(shard, now() + delay, std::forward<F>(fn));
  }

  template <typename F>
  void scheduleAtOn(int shard, Time when, F&& fn) {
    assert(shard >= 0 && shard < numShards());
    assert(when >= now() && "cannot schedule into the past");
    const ExecCtx& ctx = tlsCtx();
    const int sender = ctx.sim == this ? ctx.shard : shard;
    Shard& src = shards_[sender];
    if (src.nextSeq >= kMaxSeqPerShard) seqOverflow(sender);
    const std::uint64_t keyHi = packKey(sender, src.nextSeq++, 0);
    if (shard != sender) ++src.mailed;
    if (parallelActive_ && shard != sender) {
      assert(when >= windowEnd_.load(std::memory_order_relaxed) &&
             "cross-shard event inside the lookahead window (missing crossDelay?)");
      Mail& mail = src.outbox[shard].emplace_back();
      mail.when = when;
      mail.keyHi = keyHi;
      constructClosure(mail.slot, std::forward<F>(fn));
    } else {
      Shard& dst = shards_[shard];
      const std::uint32_t idx = acquireSlot(dst);
      constructClosure(dst.slotAt(idx), std::forward<F>(fn));
      push(dst, when, keyHi | idx);
    }
  }

  /// Permanently pin this engine to the serial merge loop, even when
  /// `workers > 1`. Called by control-plane components (ControlChannel,
  /// FaultInjector) whose handlers mutate state owned by other shards —
  /// the K-shard key space (and thus determinism at fixed K) is unchanged,
  /// only the worker threads are disabled.
  void requireSerial() { serialOnly_ = true; }
  [[nodiscard]] bool serialRequired() const { return serialOnly_; }

  /// Run until the queue drains or stop() is called. Returns final time.
  Time run();

  /// Run until simulated time `deadline` (events at exactly `deadline` run).
  Time runUntil(Time deadline);

  void stop() { stopped_.store(true, std::memory_order_relaxed); }

  [[nodiscard]] std::uint64_t eventsProcessed() const;
  /// Events executed by one shard (perf introspection / obs collector).
  [[nodiscard]] std::uint64_t shardEvents(int shard) const {
    return shards_[shard].processed;
  }
  [[nodiscard]] bool empty() const;

  /// Arena capacity high-water mark (slots ever allocated, summed over
  /// shards); perf introspection.
  [[nodiscard]] std::size_t arenaCapacity() const;

  // -- Parallel-run statistics ----------------------------------------------
  /// Barrier windows executed by parallel runs (0 for serial runs).
  [[nodiscard]] std::uint64_t barrierWindows() const { return windows_; }
  /// Mean lookahead-window width in ns (0 when no window ran).
  [[nodiscard]] double avgWindowNs() const {
    return windows_ == 0 ? 0.0
                         : static_cast<double>(windowWidthTotal_) /
                               static_cast<double>(windows_);
  }
  /// Events that crossed a shard boundary through the mailboxes.
  [[nodiscard]] std::uint64_t crossShardEvents() const;

  /// Test-only: forge a shard's next sequence number to exercise the
  /// overflow boundary without scheduling 2^34 events.
  void debugSetNextSeq(int shard, std::uint64_t seq) { shards_[shard].nextSeq = seq; }

 private:
  /// Inline closure storage. Sized so the data plane's largest closure
  /// (a Packet by value + `this` + port ids, 96 bytes today) stays off the
  /// heap while a Slot fills exactly two cache lines.
  static constexpr std::size_t kInlineBytes = 112;
  static constexpr std::size_t kChunkSlots = 256;
  static constexpr std::uint32_t kNoSlot = 0xFFFFFFFFu;

  /// What the slot's type-erased dispatcher should do; a single fused
  /// function pointer replaces separate invoke/destroy/relocate thunks so
  /// the hot path pays one indirect call per event, not two.
  enum class SlotOp : std::uint8_t {
    kRunAndDestroy,  ///< runOne(): execute the closure, then destroy it
    kDestroyOnly,    ///< ~Simulator(): discard a never-run pending closure
    kMoveTo,         ///< mailbox drain: relocate the closure into arg (Slot*)
  };

  struct Slot {
    void (*dispatch)(Slot&, SlotOp, void*) = nullptr;
    std::uint32_t nextFree = kNoSlot;
    alignas(std::max_align_t) unsigned char buf[kInlineBytes];
  };
  static_assert(sizeof(Slot) == 128, "a Slot should fill two cache lines");

  /// One cross-shard event parked between windows: its full ordering key
  /// (minus the destination slot, assigned at drain) plus the closure,
  /// stored exactly like an arena slot so the same dispatcher relocates it.
  struct Mail {
    Time when = 0;
    std::uint64_t keyHi = 0;
    Slot slot;
  };

  struct HeapItem {
    Time when;
    std::uint64_t seqSlot;  ///< packKey(shard, seq, slot); breaks when-ties

    [[nodiscard]] std::uint32_t slot() const {
      return static_cast<std::uint32_t>(seqSlot & kSlotMask);
    }
  };
  static_assert(sizeof(HeapItem) == 16);

  /// Everything one shard owns. Only its worker thread touches any of it
  /// during a parallel window (outboxes are drained by the *destination*
  /// across a barrier, which orders the accesses).
  struct Shard {
    std::vector<std::unique_ptr<Slot[]>> chunks;  ///< index-stable arena
    std::uint32_t freeHead = kNoSlot;
    std::vector<HeapItem> heap;  ///< binary min-heap over (when, shard, seq)
    Time now = 0;
    std::uint64_t nextSeq = 0;
    std::uint64_t processed = 0;
    std::uint64_t mailed = 0;  ///< cross-shard events sent
    /// outbox[d]: events for shard d produced this window (deque: Mail
    /// closures must never relocate behind the dispatcher's back).
    std::vector<std::deque<Mail>> outbox;

    [[nodiscard]] Slot& slotAt(std::uint32_t idx) {
      return chunks[idx / kChunkSlots][idx % kChunkSlots];
    }
  };

  /// Which (engine, shard) the current thread is executing an event for.
  struct ExecCtx {
    const Simulator* sim = nullptr;
    int shard = 0;
  };
  static ExecCtx& tlsCtx();

  /// True when `a` fires after `b` — the exact ordering the engine promises.
  /// (shard, seq) pairs are unique, so comparing the combined key word is
  /// decided by shard-then-seq among same-time events. Bitwise (not
  /// short-circuit) ops: the outcome is a data-dependent coin-flip in the
  /// heap walks, so flag arithmetic beats a mispredicted branch.
  [[nodiscard]] static bool later(const HeapItem& a, const HeapItem& b) {
    return (a.when > b.when) | ((a.when == b.when) & (a.seqSlot > b.seqSlot));
  }

  template <typename F>
  static void constructClosure(Slot& s, F&& fn) {
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineBytes && alignof(Fn) <= alignof(std::max_align_t)) {
      ::new (static_cast<void*>(s.buf)) Fn(std::forward<F>(fn));
      s.dispatch = [](Slot& slot, SlotOp op, void* arg) {
        Fn* f = std::launder(reinterpret_cast<Fn*>(slot.buf));
        if (op == SlotOp::kRunAndDestroy) {
          (*f)();
        } else if (op == SlotOp::kMoveTo) {
          Slot& dst = *static_cast<Slot*>(arg);
          ::new (static_cast<void*>(dst.buf)) Fn(std::move(*f));
          dst.dispatch = slot.dispatch;
        }
        f->~Fn();
      };
    } else {
      // Oversized closure: spill to the heap, park the pointer in buf.
      Fn* f = new Fn(std::forward<F>(fn));
      std::memcpy(s.buf, &f, sizeof(f));
      s.dispatch = [](Slot& slot, SlotOp op, void* arg) {
        Fn* f;
        std::memcpy(&f, slot.buf, sizeof(f));
        if (op == SlotOp::kRunAndDestroy) {
          (*f)();
          delete f;
        } else if (op == SlotOp::kDestroyOnly) {
          delete f;
        } else {
          // Relocation = handing over the pointer.
          Slot& dst = *static_cast<Slot*>(arg);
          std::memcpy(dst.buf, slot.buf, sizeof(f));
          dst.dispatch = slot.dispatch;
        }
      };
    }
  }

  [[noreturn]] static void seqOverflow(int shard);

  std::uint32_t acquireSlot(Shard& shard);
  void releaseSlot(Shard& shard, std::uint32_t idx);
  void push(Shard& shard, Time when, std::uint64_t seqSlot);
  HeapItem popTop(Shard& shard);
  /// Execute one event on `shard` (the caller already popped `top`).
  void dispatchItem(Shard& shard, int shardIdx, const HeapItem& top);

  /// Pull every mail addressed to `shard` into its heap (destination-side).
  void drainInbox(int shard);

  Time runSerial(Time deadline);          // K==1 fast path / K-way merge
  Time runParallel(Time deadline);        // YAWNS barrier windows
  void workerLoop(int shard, Time deadline, std::barrier<>& barrier);

  std::vector<Shard> shards_;
  int workers_ = 1;
  Time lookahead_ = kDefaultLookahead;
  Time globalNow_ = 0;  ///< committed time outside any event context
  std::atomic<bool> stopped_{false};

  // Parallel-run coordination (valid only inside runParallel). windowEnd_
  // is atomic because every worker stores the (identical) horizon before
  // running its slice; relaxed is enough since the value is consensus, not
  // communication.
  bool parallelActive_ = false;
  bool serialOnly_ = false;
  std::atomic<Time> windowEnd_{0};
  std::vector<Time> shardMin_;  ///< per-shard next-event time, published at B1
  std::uint64_t windows_ = 0;
  std::uint64_t windowWidthTotal_ = 0;

 public:
  /// Default conservative horizon (ns). The data plane pads cross-shard
  /// hops up to this (crossDelay), trading a little modeled latency at
  /// shard boundaries for usable window width; it stays safely below the
  /// minimum host-to-host transport latency (2x NIC + a switch traversal,
  /// ~1.3 us), which cross-shard state-transfer events rely on.
  static constexpr Time kDefaultLookahead = 500;
};

}  // namespace sdt::sim
