// Unreliable controller<->switch control channel (the out-of-band management
// network carrying flow-mods, barriers, and their acks).
//
// Real SDT deployments run the OpenFlow channel over a shared management
// switch that is just as much commodity hardware as the data plane; the
// two-phase reconfiguration protocol must therefore survive dropped,
// duplicated, reordered, and delayed control messages, and switches whose
// management link goes away entirely for a while. This class injects exactly
// those impairments, deterministically:
//
//   - every send() draws a fixed number of values (4) from a dedicated
//     xoshiro stream regardless of configuration, so the same seed yields
//     the same impairment schedule no matter which probabilities are zero;
//   - deliveries are scheduled through the slot-arena Simulator and pinned
//     to shard 0 (the control plane is home-sharded: controller, channel,
//     and switch-agent callbacks all execute there), so runs are
//     bit-identical across repeats and serial-vs-parallel sweeps;
//   - disconnect windows are explicit [from, until) intervals per switch,
//     composable with a FaultInjector schedule (e.g. drop the management
//     link of the switch whose data ports are being reconfigured).
//
// Message semantics: send(sw, fn) runs `fn` "at the switch" after the
// channel delay, zero times (drop / disconnect), once, or twice (duplicate).
// The return path is just another send() — acks are as unreliable as
// requests. Receivers must be idempotent (the transaction layer dedups by
// transfer id, modeling OpenFlow xid matching).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/rng.hpp"
#include "sim/simulator.hpp"

namespace sdt::sim {

struct ControlChannelConfig {
  double dropProb = 0.0;     ///< message lost in flight
  double dupProb = 0.0;      ///< message delivered twice
  double reorderProb = 0.0;  ///< message held back past later sends
  TimeNs baseDelay = 2'000;  ///< one-way management-network latency
  TimeNs jitter = 1'000;     ///< uniform extra delay in [0, jitter)
  TimeNs reorderDelay = 10'000;  ///< extra hold-back for reordered messages
  TimeNs dupSpacing = 1'500;     ///< second copy trails the first by this
};

struct ControlChannelStats {
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;       ///< random in-flight losses
  std::uint64_t disconnected = 0;  ///< eaten by a disconnect window
  std::uint64_t duplicated = 0;
  std::uint64_t reordered = 0;
  /// Delay accounting over every *scheduled* delivery (duplicate copies
  /// included, dropped/disconnected sends excluded): the observable latency
  /// profile of the management network.
  std::uint64_t delayNsTotal = 0;
  TimeNs delayMaxNs = 0;
};

class ControlChannel {
 public:
  ControlChannel(Simulator& sim, std::uint64_t seed,
                 ControlChannelConfig config = {})
      : sim_(&sim), config_(config), rng_(seed ^ 0xC7A22E15C0DE5ULL) {
    // Deliveries run controller handlers that mutate flow tables on
    // arbitrary shards; pin the engine to the serial merge loop.
    sim_->requireSerial();
  }

  [[nodiscard]] const ControlChannelConfig& config() const { return config_; }
  void setConfig(const ControlChannelConfig& config) { config_ = config; }

  /// Declare the management link of `sw` dead for [from, until) sim-time.
  /// Messages *sent* inside the window (either direction) are silently
  /// eaten, modeling a TCP session that has not yet re-established.
  void disconnect(int sw, TimeNs from, TimeNs until) {
    windows_.push_back({sw, from, until});
  }
  [[nodiscard]] bool isDisconnected(int sw, TimeNs at) const {
    for (const Window& w : windows_) {
      if (w.sw == sw && at >= w.from && at < w.until) return true;
    }
    return false;
  }

  /// Ship `deliver` to/from switch `sw`. The callback runs at simulated
  /// delivery time — zero, one, or two times. Always draws exactly four RNG
  /// values so impairment schedules depend only on the seed and the send
  /// sequence, not on which probabilities happen to be zero.
  void send(int sw, std::function<void()> deliver) {
    ++stats_.sent;
    const double dropDraw = rng_.uniform();
    const double dupDraw = rng_.uniform();
    const double reorderDraw = rng_.uniform();
    const double jitterDraw = rng_.uniform();

    if (isDisconnected(sw, sim_->now())) {
      ++stats_.disconnected;
      return;
    }
    if (dropDraw < config_.dropProb) {
      ++stats_.dropped;
      return;
    }
    TimeNs delay = config_.baseDelay;
    if (config_.jitter > 0) {
      delay += static_cast<TimeNs>(jitterDraw * static_cast<double>(config_.jitter));
    }
    if (reorderDraw < config_.reorderProb) {
      ++stats_.reordered;
      delay += config_.reorderDelay;
    }
    if (dupDraw < config_.dupProb) {
      ++stats_.duplicated;
      recordDelay(delay + config_.dupSpacing);
      sim_->scheduleOn(0, delay + config_.dupSpacing, [this, deliver]() {
        ++stats_.delivered;
        deliver();
      });
    }
    recordDelay(delay);
    // Shard 0 is the control plane's home shard. Management traffic is
    // out-of-band (it never races data-plane shards), and reconfig/recovery
    // suites run the engine in serial mode, where the pin costs nothing but
    // keeps delivery order independent of the caller's shard.
    sim_->scheduleOn(0, delay, [this, deliver = std::move(deliver)]() {
      ++stats_.delivered;
      deliver();
    });
  }

  [[nodiscard]] const ControlChannelStats& stats() const { return stats_; }

 private:
  void recordDelay(TimeNs delay) {
    stats_.delayNsTotal += static_cast<std::uint64_t>(delay);
    if (delay > stats_.delayMaxNs) stats_.delayMaxNs = delay;
  }

  struct Window {
    int sw = -1;
    TimeNs from = 0;
    TimeNs until = 0;
  };

  Simulator* sim_;
  ControlChannelConfig config_;
  Rng rng_;
  std::vector<Window> windows_;
  ControlChannelStats stats_;
};

}  // namespace sdt::sim
