#include "sim/transport.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace sdt::sim {

namespace {
constexpr std::uint64_t kRdmaFlowTag = 1ULL << 40;
constexpr std::uint64_t kTcpFlowTag = 2ULL << 40;

std::uint64_t rdmaFlowId(int src, int dst, int vc) {
  return kRdmaFlowTag | (static_cast<std::uint64_t>(src) << 22) |
         (static_cast<std::uint64_t>(dst) << 4) | static_cast<std::uint64_t>(vc);
}
}  // namespace

TransportManager::TransportManager(Simulator& sim, Network& net, TransportConfig config)
    : sim_(&sim), net_(&net), config_(config) {
  lanes_.resize(static_cast<std::size_t>(net.numHosts()));
  for (int h = 0; h < net.numHosts(); ++h) {
    net_->setReceiver(h, [this, h](const Packet& p) { onHostPacket(h, p); });
  }
  if (net.numHosts() > 0) hostLineRateGbps_ = net.hostLinkSpeed(0).value;
}

TransportManager::~TransportManager() = default;

// ---------------------------------------------------------------------------
// Demux
// ---------------------------------------------------------------------------

void TransportManager::onHostPacket(int host, const Packet& packet) {
  switch (packet.kind) {
    case PacketKind::kData:
      if (packet.flowId & kRdmaFlowTag) {
        onRdmaData(packet);
      } else if (auto it = tcpFlows_.find(packet.flowId); it != tcpFlows_.end()) {
        onTcpData(it->second, packet);
      }
      break;
    case PacketKind::kCnp: {
      // A CNP is delivered to the data sender, whose lane owns the flow.
      auto& flows = lanes_[static_cast<std::size_t>(host)].rdmaFlows;
      if (auto it = flows.find(packet.flowId); it != flows.end()) {
        onCnp(it->second);
      }
      break;
    }
    case PacketKind::kAck:
      if (auto it = tcpFlows_.find(packet.flowId); it != tcpFlows_.end()) {
        onTcpAck(it->second, packet);
      }
      break;
  }
  (void)host;
}

// ---------------------------------------------------------------------------
// RoCE / DCQCN
// ---------------------------------------------------------------------------

TransportManager::RdmaFlow& TransportManager::rdmaFlowFor(int src, int dst, int vc) {
  const std::uint64_t id = rdmaFlowId(src, dst, vc);
  auto& flows = lanes_[static_cast<std::size_t>(src)].rdmaFlows;
  auto it = flows.find(id);
  if (it == flows.end()) {
    RdmaFlow flow;
    flow.flowId = id;
    flow.src = src;
    flow.dst = dst;
    flow.vc = vc;
    flow.rateGbps = net_->hostLinkSpeed(src).value;
    flow.targetGbps = flow.rateGbps;
    it = flows.emplace(id, std::move(flow)).first;
  }
  return it->second;
}

std::uint64_t TransportManager::sendMessage(int src, int dst, std::int64_t bytes, int vc,
                                            MessageCallback onDelivered) {
  assert(bytes > 0);
  assert(src != dst && "loopback messages never touch the fabric");
  RdmaFlow& flow = rdmaFlowFor(src, dst, vc);
  HostLane& srcLane = lanes_[static_cast<std::size_t>(src)];
  const std::uint64_t id = hostTaggedId(src, srcLane.nextMessageId++);
  flow.sendQueue.push_back(RdmaPending{id, bytes, 0});
  // Receiver-side completion state lives on the destination lane. When the
  // destination is on another shard, registration travels as a padded
  // cross-shard event; the first data packet needs strictly longer than one
  // lookahead to reach the destination (NIC latency + the padded fabric
  // hop), so registration always lands first. The branch depends only on
  // the shard map, so serial-K and parallel-K schedule identical events, and
  // K==1 keeps the legacy direct write.
  const int dstShard = net_->hostShard(dst);
  if (sim_->numShards() == 1 || dstShard == net_->hostShard(src)) {
    HostLane& dstLane = lanes_[static_cast<std::size_t>(dst)];
    dstLane.rdmaRecv[{flow.flowId, id}] = RdmaRecvState{};
    dstLane.rdmaMsgState[id] = RdmaMsgState{bytes, std::move(onDelivered)};
  } else {
    sim_->scheduleOn(dstShard, sim_->crossDelay(dstShard, 0),
                     [this, fid = flow.flowId, id, dst, bytes,
                      cb = std::move(onDelivered)]() mutable {
      HostLane& dstLane = lanes_[static_cast<std::size_t>(dst)];
      dstLane.rdmaRecv[{fid, id}] = RdmaRecvState{};
      dstLane.rdmaMsgState[id] = RdmaMsgState{bytes, std::move(cb)};
    });
  }
  if (!flow.pumping) {
    flow.pumping = true;
    sim_->schedule(0, [this, src, fid = flow.flowId]() {
      rdmaPump(lanes_[static_cast<std::size_t>(src)].rdmaFlows.at(fid));
    });
  }
  return id;
}

void TransportManager::rdmaPump(RdmaFlow& flow) {
  if (flow.sendQueue.empty()) {
    flow.pumping = false;
    return;
  }
  const Time now = sim_->now();
  // NIC backpressure: with PFC pausing the NIC, keep the software queue
  // short and retry once the backlog should have drained.
  if (net_->hostQueueBytes(flow.src) > config_.nicBackpressureBytes) {
    const Time retry = Gbps{hostLineRateGbps_}.serializationNs(config_.nicBackpressureBytes);
    sim_->schedule(std::max<Time>(retry, 500), [this, src = flow.src, fid = flow.flowId]() {
      rdmaPump(lanes_[static_cast<std::size_t>(src)].rdmaFlows.at(fid));
    });
    return;
  }
  if (now < flow.nextSendAt) {
    sim_->schedule(flow.nextSendAt - now,
                   [this, src = flow.src, fid = flow.flowId]() {
                     rdmaPump(lanes_[static_cast<std::size_t>(src)].rdmaFlows.at(fid));
                   });
    return;
  }
  RdmaPending& msg = flow.sendQueue.front();
  HostLane& srcLane = lanes_[static_cast<std::size_t>(flow.src)];
  Packet pkt;
  pkt.id = hostTaggedId(flow.src, srcLane.nextPacketId++);
  pkt.flowId = flow.flowId;
  pkt.srcHost = flow.src;
  pkt.dstHost = flow.dst;
  pkt.kind = PacketKind::kData;
  pkt.vc = static_cast<std::uint8_t>(flow.vc);
  pkt.ecnCapable = config_.dcqcn.enabled;
  pkt.messageId = msg.messageId;
  pkt.payloadBytes = std::min<std::int64_t>(config_.mtuBytes, msg.bytes - msg.sentBytes);
  pkt.seq = static_cast<std::uint64_t>(msg.sentBytes);
  msg.sentBytes += pkt.payloadBytes;
  const std::int64_t wire = pkt.wireBytes();
  if (msg.sentBytes >= msg.bytes) flow.sendQueue.pop_front();
  net_->injectFromHost(flow.src, std::move(pkt));

  // Pace at the DCQCN current rate.
  flow.nextSendAt = std::max(now, flow.nextSendAt) + Gbps{flow.rateGbps}.serializationNs(wire);
  sim_->schedule(std::max<Time>(0, flow.nextSendAt - now),
                 [this, src = flow.src, fid = flow.flowId]() {
                   rdmaPump(lanes_[static_cast<std::size_t>(src)].rdmaFlows.at(fid));
                 });
}

void TransportManager::onRdmaData(const Packet& packet) {
  HostLane& lane = lanes_[static_cast<std::size_t>(packet.dstHost)];
  const auto key = std::pair{packet.flowId, packet.messageId};
  const auto it = lane.rdmaRecv.find(key);
  if (it == lane.rdmaRecv.end()) return;  // stray (e.g. isolation-test cross-talk)
  it->second.receivedBytes += packet.payloadBytes;
  lane.rdmaDelivered += packet.payloadBytes;

  // DCQCN notification point: echo congestion back to the sender, at most
  // one CNP per cnpInterval per flow.
  if (packet.ecnMarked && config_.dcqcn.enabled) {
    const Time now = sim_->now();
    Time& last = lane.cnpLastSent[packet.flowId];
    if (last == 0 || now - last >= config_.dcqcn.cnpInterval) {
      last = now;
      Packet cnp;
      cnp.id = hostTaggedId(packet.dstHost, lane.nextPacketId++);
      cnp.flowId = packet.flowId;
      cnp.srcHost = packet.dstHost;
      cnp.dstHost = packet.srcHost;
      cnp.kind = PacketKind::kCnp;
      cnp.vc = kControlClass;
      cnp.payloadBytes = 0;
      net_->injectFromHost(packet.dstHost, std::move(cnp));
      ++lane.cnpsSent;
    }
  }

  // Message completion.
  const auto msgIt = lane.rdmaMsgState.find(packet.messageId);
  if (msgIt == lane.rdmaMsgState.end()) return;
  if (it->second.receivedBytes >= msgIt->second.bytes) {
    auto cb = std::move(msgIt->second.onDelivered);
    lane.rdmaMsgState.erase(msgIt);
    lane.rdmaRecv.erase(it);
    if (cb) cb(packet.messageId, sim_->now());
  }
}

void TransportManager::onCnp(RdmaFlow& flow) {
  const DcqcnConfig& dc = config_.dcqcn;
  const Time now = sim_->now();
  if (flow.lastCnpHandled >= 0 && now - flow.lastCnpHandled < dc.cnpInterval) return;
  flow.lastCnpHandled = now;
  flow.targetGbps = flow.rateGbps;
  flow.alpha = (1.0 - dc.gain) * flow.alpha + dc.gain;
  flow.rateGbps = std::max(dc.minRateGbps, flow.rateGbps * (1.0 - flow.alpha / 2.0));
  flow.recoverySteps = 0;
  if (!flow.timerRunning) {
    flow.timerRunning = true;
    sim_->schedule(dc.rateTimer, [this, fid = flow.flowId]() { rdmaTimer(fid); });
  }
}

void TransportManager::rdmaTimer(std::uint64_t flowId) {
  auto& flows = lanes_[static_cast<std::size_t>(rdmaFlowSrc(flowId))].rdmaFlows;
  auto it = flows.find(flowId);
  if (it == flows.end()) return;
  RdmaFlow& flow = it->second;
  const DcqcnConfig& dc = config_.dcqcn;
  const double lineRate = net_->hostLinkSpeed(flow.src).value;

  flow.alpha *= (1.0 - dc.gain);
  ++flow.recoverySteps;
  if (flow.recoverySteps > dc.fastRecoverySteps) {
    flow.targetGbps = std::min(lineRate, flow.targetGbps + dc.additiveIncreaseGbps);
  }
  flow.rateGbps = std::min(lineRate, (flow.rateGbps + flow.targetGbps) / 2.0);

  if (flow.rateGbps >= lineRate * 0.999) {
    flow.rateGbps = lineRate;
    flow.timerRunning = false;
    return;
  }
  sim_->schedule(dc.rateTimer, [this, flowId]() { rdmaTimer(flowId); });
}

// ---------------------------------------------------------------------------
// TCP-lite
// ---------------------------------------------------------------------------

std::uint64_t TransportManager::startTcpFlow(int src, int dst, std::int64_t totalBytes,
                                             std::function<void(Time)> onComplete) {
  TcpFlow flow;
  flow.flowId = kTcpFlowTag | nextTcpFlow_++;
  flow.src = src;
  flow.dst = dst;
  flow.totalBytes = totalBytes;
  flow.onComplete = std::move(onComplete);
  flow.cwnd = static_cast<double>(config_.tcpInitialCwndBytes);
  flow.ssthresh = static_cast<double>(config_.tcpMaxCwndBytes);
  const std::uint64_t id = flow.flowId;
  tcpFlows_.emplace(id, std::move(flow));
  sim_->schedule(0, [this, id]() { tcpPump(tcpFlows_.at(id)); });
  return id;
}

std::int64_t TransportManager::tcpDeliveredBytes(std::uint64_t flowId) const {
  const auto it = tcpFlows_.find(flowId);
  return it == tcpFlows_.end() ? 0 : it->second.deliveredBytes;
}

std::int64_t TransportManager::rdmaDeliveredBytes(int host) const {
  return lanes_[static_cast<std::size_t>(host)].rdmaDelivered;
}

std::uint64_t TransportManager::cnpsSent() const {
  std::uint64_t sum = 0;
  for (const HostLane& lane : lanes_) sum += lane.cnpsSent;
  return sum;
}

Time TransportManager::tcpRto(const TcpFlow& flow) const {
  if (flow.srtt <= 0.0) return msToNs(1.0);
  const double rto = flow.srtt + 4.0 * std::max(flow.rttvar, 1000.0);
  return std::max<Time>(config_.tcpMinRto, static_cast<Time>(rto));
}

void TransportManager::tcpArmRto(TcpFlow& flow) {
  const std::uint64_t epoch = ++flow.rtoEpoch;
  const std::int64_t ackedAtArm = flow.highestAcked;
  sim_->schedule(tcpRto(flow), [this, id = flow.flowId, epoch, ackedAtArm]() {
    auto it = tcpFlows_.find(id);
    if (it == tcpFlows_.end()) return;
    TcpFlow& f = it->second;
    if (f.completed || f.rtoEpoch != epoch) return;  // superseded
    if (f.highestAcked > ackedAtArm || f.nextSeq == f.highestAcked) return;  // progress/idle
    // Timeout: multiplicative collapse and go-back-N.
    f.ssthresh = std::max(f.cwnd / 2.0, 2.0 * static_cast<double>(config_.mtuBytes));
    f.cwnd = static_cast<double>(config_.mtuBytes);
    f.dupAcks = 0;
    f.nextSeq = f.highestAcked;
    tcpPump(f);
  });
}

void TransportManager::tcpPump(TcpFlow& flow) {
  if (flow.completed) return;
  const std::int64_t windowEnd =
      flow.highestAcked + static_cast<std::int64_t>(flow.cwnd);
  const std::int64_t dataEnd =
      flow.totalBytes < 0 ? std::numeric_limits<std::int64_t>::max() : flow.totalBytes;
  bool sent = false;
  HostLane& srcLane = lanes_[static_cast<std::size_t>(flow.src)];
  while (flow.nextSeq < std::min(windowEnd, dataEnd)) {
    Packet pkt;
    pkt.id = hostTaggedId(flow.src, srcLane.nextPacketId++);
    pkt.flowId = flow.flowId;
    pkt.srcHost = flow.src;
    pkt.dstHost = flow.dst;
    pkt.kind = PacketKind::kData;
    pkt.vc = 0;
    pkt.payloadBytes =
        std::min<std::int64_t>(config_.mtuBytes, std::min(windowEnd, dataEnd) - flow.nextSeq);
    pkt.seq = static_cast<std::uint64_t>(flow.nextSeq);
    pkt.messageId = static_cast<std::uint64_t>(sim_->now());  // RTT echo
    flow.nextSeq += pkt.payloadBytes;
    net_->injectFromHost(flow.src, std::move(pkt));
    sent = true;
  }
  if (sent) tcpArmRto(flow);
}

void TransportManager::onTcpData(TcpFlow& flow, const Packet& packet) {
  // Go-back-N receiver: only in-order data advances; everything is
  // cumulatively acked so the sender sees dup-acks on gaps.
  if (static_cast<std::int64_t>(packet.seq) == flow.expectedSeq) {
    flow.expectedSeq += packet.payloadBytes;
    flow.deliveredBytes += packet.payloadBytes;
  }
  Packet ack;
  ack.id = hostTaggedId(flow.dst, lanes_[static_cast<std::size_t>(flow.dst)].nextPacketId++);
  ack.flowId = flow.flowId;
  ack.srcHost = flow.dst;
  ack.dstHost = flow.src;
  ack.kind = PacketKind::kAck;
  ack.vc = kControlClass;
  ack.payloadBytes = 0;
  ack.ackSeq = static_cast<std::uint64_t>(flow.expectedSeq);
  ack.messageId = packet.messageId;  // RTT echo
  net_->injectFromHost(flow.dst, std::move(ack));
}

void TransportManager::onTcpAck(TcpFlow& flow, const Packet& packet) {
  if (flow.completed) return;
  const auto acked = static_cast<std::int64_t>(packet.ackSeq);
  // RTT sample from the echoed send timestamp.
  const double sample = static_cast<double>(sim_->now()) -
                        static_cast<double>(packet.messageId);
  if (sample > 0) {
    if (flow.srtt <= 0) {
      flow.srtt = sample;
      flow.rttvar = sample / 2.0;
    } else {
      flow.rttvar = 0.75 * flow.rttvar + 0.25 * std::abs(flow.srtt - sample);
      flow.srtt = 0.875 * flow.srtt + 0.125 * sample;
    }
  }
  if (acked > flow.highestAcked) {
    const std::int64_t newlyAcked = acked - flow.highestAcked;
    flow.highestAcked = acked;
    flow.dupAcks = 0;
    const auto mtu = static_cast<double>(config_.mtuBytes);
    if (flow.cwnd < flow.ssthresh) {
      flow.cwnd += static_cast<double>(newlyAcked);  // slow start
    } else {
      flow.cwnd += mtu * mtu / flow.cwnd;  // congestion avoidance
    }
    flow.cwnd = std::min(flow.cwnd, static_cast<double>(config_.tcpMaxCwndBytes));
    if (flow.totalBytes >= 0 && flow.highestAcked >= flow.totalBytes) {
      flow.completed = true;
      if (flow.onComplete) flow.onComplete(sim_->now());
      return;
    }
    tcpPump(flow);
  } else if (acked == flow.highestAcked && flow.nextSeq > flow.highestAcked) {
    if (++flow.dupAcks == 3) {
      // Fast retransmit, go-back-N.
      flow.ssthresh = std::max(flow.cwnd / 2.0, 2.0 * static_cast<double>(config_.mtuBytes));
      flow.cwnd = flow.ssthresh;
      flow.dupAcks = 0;
      flow.nextSeq = flow.highestAcked;
      tcpPump(flow);
    }
  }
}

}  // namespace sdt::sim
