#include "sim/simulator.hpp"

namespace sdt::sim {

Simulator::~Simulator() {
  // Destroy pending closures without running them.
  for (const HeapItem& item : heap_) {
    Slot& s = slotAt(item.slot());
    s.dispatch(s, SlotOp::kDestroyOnly);
  }
}

std::uint32_t Simulator::acquireSlot() {
  if (freeHead_ == kNoSlot) {
    const auto base = static_cast<std::uint32_t>(chunks_.size() * kChunkSlots);
    assert(base + kChunkSlots <= kSlotMask + 1 && "event arena exhausted");
    chunks_.push_back(std::make_unique<Slot[]>(kChunkSlots));
    Slot* chunk = chunks_.back().get();
    for (std::uint32_t i = 0; i < kChunkSlots; ++i) {
      chunk[i].nextFree = i + 1 < kChunkSlots ? base + i + 1 : kNoSlot;
    }
    freeHead_ = base;
  }
  const std::uint32_t idx = freeHead_;
  freeHead_ = slotAt(idx).nextFree;
  return idx;
}

void Simulator::releaseSlot(std::uint32_t idx) {
  Slot& s = slotAt(idx);
  s.nextFree = freeHead_;
  freeHead_ = idx;
}

void Simulator::push(Time when, std::uint32_t slot) {
  assert(nextSeq_ < (1ULL << (64 - kSlotBits)) && "event sequence exhausted");
  const HeapItem item{when, nextSeq_++ << kSlotBits | slot};
  heap_.push_back(item);
  // Sift up, moving holes instead of swapping (one store per level).
  std::size_t i = heap_.size() - 1;
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!later(heap_[parent], item)) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = item;
}

Simulator::HeapItem Simulator::popTop() {
  const HeapItem top = heap_.front();
  const HeapItem last = heap_.back();
  heap_.pop_back();
  const std::size_t n = heap_.size();
  if (n == 0) return top;
  // Bottom-up deletion: walk the hole down the min-child path all the way to
  // a leaf (one comparison per level), then bubble the displaced last
  // element back up (O(1) expected, since it usually belongs near a leaf).
  // Roughly halves the comparisons of a textbook sift-down.
  std::size_t hole = 0;
  std::size_t child = 1;
  while (child < n) {
    // Min-child select as arithmetic, not a branch: which child wins is a
    // coin flip the predictor can't learn.
    if (child + 1 < n) {
      child += static_cast<std::size_t>(later(heap_[child], heap_[child + 1]));
    }
    heap_[hole] = heap_[child];
    hole = child;
    child = 2 * hole + 1;
  }
  while (hole > 0) {
    const std::size_t parent = (hole - 1) / 2;
    if (!later(heap_[parent], last)) break;
    heap_[hole] = heap_[parent];
    hole = parent;
  }
  heap_[hole] = last;
  return top;
}

bool Simulator::runOne() {
  if (heap_.empty() || stopped_) return false;
  const HeapItem top = popTop();
  now_ = top.when;
  ++processed_;
  // The slot stays acquired while the closure executes, so nested schedule()
  // calls can never recycle the buffer under the running closure.
  Slot& s = slotAt(top.slot());
  s.dispatch(s, SlotOp::kRunAndDestroy);
  releaseSlot(top.slot());
  return true;
}

Time Simulator::run() {
  stopped_ = false;
  while (runOne()) {
  }
  return now_;
}

Time Simulator::runUntil(Time deadline) {
  stopped_ = false;
  while (!heap_.empty() && !stopped_ && heap_.front().when <= deadline) {
    runOne();
  }
  if (now_ < deadline) now_ = deadline;
  return now_;
}

}  // namespace sdt::sim
