#include "sim/simulator.hpp"

#include <cassert>

namespace sdt::sim {

void Simulator::scheduleAt(Time when, std::function<void()> fn) {
  assert(when >= now_ && "cannot schedule into the past");
  queue_.push(Event{when, nextSeq_++, std::move(fn)});
}

bool Simulator::runOne() {
  if (queue_.empty() || stopped_) return false;
  // Moving out of a priority_queue requires a const_cast dance; copy the
  // small members and move the callable.
  const Event& top = queue_.top();
  now_ = top.when;
  auto fn = std::move(const_cast<Event&>(top).fn);
  queue_.pop();
  ++processed_;
  fn();
  return true;
}

Time Simulator::run() {
  stopped_ = false;
  while (runOne()) {
  }
  return now_;
}

Time Simulator::runUntil(Time deadline) {
  stopped_ = false;
  while (!queue_.empty() && !stopped_ && queue_.top().when <= deadline) {
    runOne();
  }
  if (now_ < deadline) now_ = deadline;
  return now_;
}

}  // namespace sdt::sim
