#include "sim/simulator.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <thread>

namespace sdt::sim {

namespace {
constexpr Time kInfTime = std::numeric_limits<Time>::max();

int envInt(const char* name, int fallback, int lo, int hi) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  const long v = std::strtol(raw, nullptr, 10);
  if (v < lo) return lo;
  if (v > hi) return hi;
  return static_cast<int>(v);
}
}  // namespace

int Simulator::envShards() { return envInt("SDT_SHARDS", 1, 1, kMaxShards); }
int Simulator::envWorkers() { return envInt("SDT_SIM_WORKERS", 1, 1, kMaxShards); }

Simulator::Simulator() : Simulator(envShards(), envWorkers()) {}

Simulator::Simulator(int shards, int workers) {
  if (shards < 1) shards = 1;
  if (shards > kMaxShards) shards = kMaxShards;
  workers_ = std::min(std::max(workers, 1), shards);
  shards_.resize(static_cast<std::size_t>(shards));
  for (Shard& s : shards_) s.outbox.resize(static_cast<std::size_t>(shards));
}

Simulator::~Simulator() {
  // Destroy pending closures without running them — heap entries and any
  // mail stranded by a stopped parallel run alike.
  for (Shard& shard : shards_) {
    for (const HeapItem& item : shard.heap) {
      Slot& s = shard.slotAt(item.slot());
      s.dispatch(s, SlotOp::kDestroyOnly, nullptr);
    }
    for (std::deque<Mail>& box : shard.outbox) {
      for (Mail& mail : box) mail.slot.dispatch(mail.slot, SlotOp::kDestroyOnly, nullptr);
    }
  }
}

Simulator::ExecCtx& Simulator::tlsCtx() {
  static thread_local ExecCtx ctx;
  return ctx;
}

void Simulator::seqOverflow(int shard) {
  std::fprintf(stderr,
               "FATAL: sim shard %d exhausted its %u-bit event sequence space "
               "(2^%u schedule calls). Shard the run wider (SDT_SHARDS) or "
               "split the experiment into shorter runs.\n",
               shard, kSeqBits, kSeqBits);
  std::abort();
}

std::uint32_t Simulator::acquireSlot(Shard& shard) {
  if (shard.freeHead == kNoSlot) {
    const auto base = static_cast<std::uint32_t>(shard.chunks.size() * kChunkSlots);
    assert(base + kChunkSlots <= kSlotMask + 1 && "event arena exhausted");
    shard.chunks.push_back(std::make_unique<Slot[]>(kChunkSlots));
    Slot* chunk = shard.chunks.back().get();
    for (std::uint32_t i = 0; i < kChunkSlots; ++i) {
      chunk[i].nextFree = i + 1 < kChunkSlots ? base + i + 1 : kNoSlot;
    }
    shard.freeHead = base;
  }
  const std::uint32_t idx = shard.freeHead;
  shard.freeHead = shard.slotAt(idx).nextFree;
  return idx;
}

void Simulator::releaseSlot(Shard& shard, std::uint32_t idx) {
  Slot& s = shard.slotAt(idx);
  s.nextFree = shard.freeHead;
  shard.freeHead = idx;
}

void Simulator::push(Shard& shard, Time when, std::uint64_t seqSlot) {
  const HeapItem item{when, seqSlot};
  std::vector<HeapItem>& heap = shard.heap;
  heap.push_back(item);
  // Sift up, moving holes instead of swapping (one store per level).
  std::size_t i = heap.size() - 1;
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!later(heap[parent], item)) break;
    heap[i] = heap[parent];
    i = parent;
  }
  heap[i] = item;
}

Simulator::HeapItem Simulator::popTop(Shard& shard) {
  std::vector<HeapItem>& heap = shard.heap;
  const HeapItem top = heap.front();
  const HeapItem last = heap.back();
  heap.pop_back();
  const std::size_t n = heap.size();
  if (n == 0) return top;
  // Bottom-up deletion: walk the hole down the min-child path all the way to
  // a leaf (one comparison per level), then bubble the displaced last
  // element back up (O(1) expected, since it usually belongs near a leaf).
  // Roughly halves the comparisons of a textbook sift-down.
  std::size_t hole = 0;
  std::size_t child = 1;
  while (child < n) {
    // Min-child select as arithmetic, not a branch: which child wins is a
    // coin flip the predictor can't learn.
    if (child + 1 < n) {
      child += static_cast<std::size_t>(later(heap[child], heap[child + 1]));
    }
    heap[hole] = heap[child];
    hole = child;
    child = 2 * hole + 1;
  }
  while (hole > 0) {
    const std::size_t parent = (hole - 1) / 2;
    if (!later(heap[parent], last)) break;
    heap[hole] = heap[parent];
    hole = parent;
  }
  heap[hole] = last;
  return top;
}

void Simulator::dispatchItem(Shard& shard, int shardIdx, const HeapItem& top) {
  shard.now = top.when;
  ++shard.processed;
  ExecCtx& ctx = tlsCtx();
  ctx.sim = this;
  ctx.shard = shardIdx;
  // The slot stays acquired while the closure executes, so nested schedule()
  // calls can never recycle the buffer under the running closure.
  Slot& s = shard.slotAt(top.slot());
  s.dispatch(s, SlotOp::kRunAndDestroy, nullptr);
  releaseSlot(shard, top.slot());
}

void Simulator::drainInbox(int shard) {
  Shard& dst = shards_[shard];
  for (Shard& src : shards_) {
    std::deque<Mail>& box = src.outbox[shard];
    for (Mail& mail : box) {
      const std::uint32_t idx = acquireSlot(dst);
      mail.slot.dispatch(mail.slot, SlotOp::kMoveTo, &dst.slotAt(idx));
      push(dst, mail.when, mail.keyHi | idx);
    }
    box.clear();
  }
}

Time Simulator::runSerial(Time deadline) {
  ExecCtx& ctx = tlsCtx();
  const ExecCtx saved = ctx;
  const int k = numShards();
  if (k == 1) {
    // Legacy fast path: one shard, no merge scan.
    Shard& sh = shards_[0];
    while (!sh.heap.empty() && !stopped_.load(std::memory_order_relaxed) &&
           sh.heap.front().when <= deadline) {
      const HeapItem top = popTop(sh);
      dispatchItem(sh, 0, top);
    }
  } else {
    // K-way merge in global (when, shard, seq) order — the canonical
    // serial-K ordering the parallel windows must reproduce.
    while (!stopped_.load(std::memory_order_relaxed)) {
      int best = -1;
      for (int s = 0; s < k; ++s) {
        if (shards_[s].heap.empty()) continue;
        if (best < 0 || later(shards_[best].heap.front(), shards_[s].heap.front())) {
          best = s;
        }
      }
      if (best < 0 || shards_[best].heap.front().when > deadline) break;
      Shard& sh = shards_[best];
      const HeapItem top = popTop(sh);
      dispatchItem(sh, best, top);
    }
  }
  ctx = saved;
  Time maxNow = globalNow_;
  for (const Shard& s : shards_) maxNow = std::max(maxNow, s.now);
  globalNow_ = maxNow;
  return globalNow_;
}

void Simulator::workerLoop(int shard, Time deadline, std::barrier<>& barrier) {
  ExecCtx& ctx = tlsCtx();
  const ExecCtx saved = ctx;
  ctx.sim = this;
  ctx.shard = shard;
  Shard& sh = shards_[shard];
  const int k = numShards();
  for (;;) {
    drainInbox(shard);
    shardMin_[shard] = sh.heap.empty() ? kInfTime : sh.heap.front().when;
    barrier.arrive_and_wait();  // publish barrier: all mins visible
    Time gmin = kInfTime;
    for (int s = 0; s < k; ++s) gmin = std::min(gmin, shardMin_[s]);
    // Every worker evaluates the same exit condition from the same data, so
    // they all leave on the same iteration. stop() is window-granular by
    // design: checking it mid-window would make results depend on thread
    // interleaving.
    if (gmin == kInfTime || gmin > deadline ||
        stopped_.load(std::memory_order_relaxed)) {
      break;
    }
    Time horizon = gmin + lookahead_;
    if (deadline != kInfTime) horizon = std::min(horizon, deadline + 1);
    windowEnd_.store(horizon, std::memory_order_relaxed);
    if (shard == 0) {
      ++windows_;
      windowWidthTotal_ += static_cast<std::uint64_t>(horizon - gmin);
    }
    while (!sh.heap.empty() && sh.heap.front().when < horizon) {
      const HeapItem top = popTop(sh);
      dispatchItem(sh, shard, top);
      // dispatchItem rewrites the tls ctx; within a worker it is already
      // ours, so this is a cheap idempotent store.
    }
    barrier.arrive_and_wait();  // window-end barrier: outboxes now stable
  }
  ctx = saved;
}

Time Simulator::runParallel(Time deadline) {
  const int k = numShards();
  parallelActive_ = true;
  shardMin_.assign(static_cast<std::size_t>(k), kInfTime);
  std::barrier<> barrier(k);
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(k - 1));
  for (int s = 1; s < k; ++s) {
    threads.emplace_back([this, s, deadline, &barrier]() { workerLoop(s, deadline, barrier); });
  }
  workerLoop(0, deadline, barrier);
  for (std::thread& t : threads) t.join();
  parallelActive_ = false;
  Time maxNow = globalNow_;
  for (const Shard& s : shards_) maxNow = std::max(maxNow, s.now);
  globalNow_ = maxNow;
  return globalNow_;
}

Time Simulator::run() {
  stopped_.store(false, std::memory_order_relaxed);
  if (workers_ > 1 && numShards() > 1 && lookahead_ > 0 && !serialOnly_) {
    return runParallel(kInfTime);
  }
  return runSerial(kInfTime);
}

Time Simulator::runUntil(Time deadline) {
  stopped_.store(false, std::memory_order_relaxed);
  if (workers_ > 1 && numShards() > 1 && lookahead_ > 0 && !serialOnly_) {
    runParallel(deadline);
  } else {
    runSerial(deadline);
  }
  if (globalNow_ < deadline) globalNow_ = deadline;
  return globalNow_;
}

std::uint64_t Simulator::eventsProcessed() const {
  std::uint64_t total = 0;
  for (const Shard& s : shards_) total += s.processed;
  return total;
}

std::uint64_t Simulator::crossShardEvents() const {
  std::uint64_t total = 0;
  for (const Shard& s : shards_) total += s.mailed;
  return total;
}

bool Simulator::empty() const {
  for (const Shard& s : shards_) {
    if (!s.heap.empty()) return false;
    for (const std::deque<Mail>& box : s.outbox) {
      if (!box.empty()) return false;
    }
  }
  return true;
}

std::size_t Simulator::arenaCapacity() const {
  std::size_t total = 0;
  for (const Shard& s : shards_) total += s.chunks.size() * kChunkSlots;
  return total;
}

}  // namespace sdt::sim
