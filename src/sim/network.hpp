// Packet-level data plane: switches, hosts, links, per-priority egress
// queues, PFC (802.1Qbb) backpressure, ECN marking, and cut-through.
//
// One Network instance models either
//   - the "full testbed": one sim switch per *logical* switch, forwarding
//     via a routing algorithm, zero crossbar-sharing overhead; or
//   - an SDT deployment: one sim switch per *physical* switch, forwarding
//     by executing the controller-generated OpenFlow tables, self-links and
//     inter-switch links wired exactly as the projection dictates, plus the
//     crossbar-sharing overhead model (multiple sub-switches contending for
//     one crossbar is where the paper's 0.03-2% latency delta comes from).
// Both are assembled by sim/builder.hpp; the Network itself is agnostic.
//
// PFC model: ingress accounting per (port, priority class). While a packet
// sits in an egress queue of switch S it is charged to the S-port it arrived
// on; crossing the XOFF watermark sends PAUSE for that class to the upstream
// port, XON sends RESUME. With PFC enabled queues never drop (lossless);
// with PFC disabled queues drop at a fixed capacity (lossy ethernet).
#pragma once

#include <array>
#include <functional>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "common/result.hpp"
#include "common/rng.hpp"
#include "sim/packet.hpp"
#include "sim/simulator.hpp"

namespace sdt::sim {

struct NetworkConfig {
  std::int64_t mtuBytes = 1024;  ///< max payload per data packet
  bool cutThrough = true;
  bool pfcEnabled = true;
  std::int64_t pfcXoffBytes = 80 * kKiB;
  std::int64_t pfcXonBytes = 60 * kKiB;
  bool ecnEnabled = true;
  std::int64_t ecnThresholdBytes = 64 * kKiB;
  std::int64_t lossyQueueCapBytes = 256 * kKiB;
  TimeNs switchLatency = 350;  ///< pipeline latency per traversal
  TimeNs nicLatency = 500;     ///< host NIC processing per direction
  TimeNs pfcCtrlDelay = 200;   ///< PAUSE/RESUME propagation + handling
  // Propagation delays (builder wiring). Everything sits in one rack/room
  // (the paper's cluster), so cables are a few meters in every mode.
  TimeNs linkPropDelay = 10;         ///< full-testbed fabric cable (~2 m)
  TimeNs hostPropDelay = 10;         ///< host attachment cable
  TimeNs selfLinkPropDelay = 10;     ///< SDT loopback fiber (~2 m)
  TimeNs interSwitchPropDelay = 20;  ///< SDT cross-switch cable (~4 m)
};

/// Extra per-traversal latency from crossbar sharing (SDT only): the more
/// sub-switches a physical crossbar hosts, the more arbitration it does.
struct CrossbarModel {
  double baseNs = 0.0;
  double perSubSwitchNs = 0.0;

  [[nodiscard]] TimeNs extra(int subSwitches) const {
    if (subSwitches <= 1) return static_cast<TimeNs>(baseNs);
    return static_cast<TimeNs>(baseNs + perSubSwitchNs * (subSwitches - 1));
  }
};

struct ForwardResult {
  bool drop = true;
  int outPort = -1;
  int vc = 0;
  /// Epoch the forwarding decision ran under (0 = switch does not stamp).
  /// The network writes it back into the packet so the stamp made at the
  /// first hop pins every later lookup to the same configuration.
  std::uint32_t epoch = 0;
};

/// Forwarding decision function of one switch (routing- or table-driven).
using Forwarder = std::function<ForwardResult(const Packet&, int inPort)>;

struct NodeRef {
  enum class Kind : std::uint8_t { kNone, kSwitch, kHost };
  Kind kind = Kind::kNone;
  int idx = -1;

  [[nodiscard]] bool valid() const { return kind != Kind::kNone; }
};

struct PortCounters {
  std::uint64_t txPackets = 0;
  std::uint64_t txBytes = 0;
  std::uint64_t rxPackets = 0;
  std::uint64_t rxBytes = 0;
  std::uint64_t drops = 0;
  std::uint64_t pausesSent = 0;
  std::uint64_t ecnMarks = 0;
  std::uint64_t faultDrops = 0;        ///< drops caused by injected faults (subset of drops)
  std::uint64_t corruptedPackets = 0;  ///< frames damaged by injected impairment
};

class Network {
 public:
  Network(Simulator& sim, NetworkConfig config) : sim_(&sim), config_(config) {
    shardState_.resize(static_cast<std::size_t>(sim.numShards()));
  }

  // -- Construction ---------------------------------------------------------
  int addSwitch(int numPorts, Forwarder forwarder, TimeNs extraLatency = 0);
  int addHost();
  /// Wire two switch ports (sw1==sw2 models an SDT self-link).
  void connectSwitches(int sw1, int p1, int sw2, int p2, Gbps speed, TimeNs propDelay);
  void connectHost(int host, int sw, int port, Gbps speed, TimeNs propDelay);

  // -- Transport-facing API -------------------------------------------------
  /// Enqueue a packet at the host's NIC (applies NIC latency internally).
  void injectFromHost(int host, Packet packet);
  /// Delivery callback (transport demux). Called after the sniffer.
  void setReceiver(int host, std::function<void(const Packet&)> receiver);
  /// Observation hook for every packet reaching the host ("Wireshark",
  /// used by the §VI-B isolation experiment).
  void setSniffer(int host, std::function<void(const Packet&)> sniffer);

  // -- Sharding -------------------------------------------------------------
  /// Partition the (fully wired) topology across the simulator's shards:
  /// switches in contiguous blocks, each host on its attached switch's
  /// shard. Call after construction, before the run. With 1 shard this is a
  /// no-op (everything already lives on shard 0). Mutable per-shard engine
  /// state (packet pool, drop/peak counters, fault RNG streams) is keyed by
  /// the owning node's shard, so parallel windows never share it.
  void partitionShards();
  [[nodiscard]] int switchShard(int sw) const { return switchShard_[sw]; }
  [[nodiscard]] int hostShard(int host) const { return hostShard_[host]; }

  // -- Fault injection (sim::FaultInjector drives these) --------------------
  /// Take a switch port down/up. A down port black-holes: its egress queue
  /// drains into fault drops (the transmit laser feeds a dead fiber) and
  /// arriving frames are discarded. PFC ingress accounting stays balanced.
  void setPortUp(int sw, int port, bool up);
  [[nodiscard]] bool isPortUp(int sw, int port) const {
    return switches_[sw].ports[port].up;
  }
  /// A stalled port keeps its queue (transceiver wedged, not reported down):
  /// tx counters freeze while backlog builds — the counter-stall signature
  /// the Network Monitor's failure detector looks for.
  void setPortStalled(int sw, int port, bool stalled);
  /// Probabilistic ingress impairment: drop frames with `dropProb`, damage
  /// them with `corruptProb` (damaged frames die at the receiving NIC's CRC
  /// check). Draws come from the fault RNG in event order, so runs with the
  /// same seed are bit-identical.
  void setPortImpairment(int sw, int port, double dropProb, double corruptProb);
  /// Seed the impairment RNG. Each shard draws from its own substream
  /// (shard 0's is the legacy stream, so 1-shard runs are bit-identical to
  /// the pre-sharding engine); draws happen in the owning shard's event
  /// order, so fixed-K runs are deterministic serial or parallel.
  void seedFaultRng(std::uint64_t seed);
  [[nodiscard]] std::uint64_t faultDrops() const;
  /// Peer (switch, port) wired to (sw, port), if the peer is a switch —
  /// what a cable cut must take down on the far side.
  [[nodiscard]] std::optional<std::pair<int, int>> switchPeerOf(int sw, int port) const {
    const Port& p = switches_[sw].ports[port];
    if (p.peer.kind != NodeRef::Kind::kSwitch) return std::nullopt;
    return std::make_pair(p.peer.idx, p.peerPort);
  }

  // -- Introspection --------------------------------------------------------
  [[nodiscard]] Time now() const { return sim_->now(); }
  [[nodiscard]] std::int64_t hostQueueBytes(int host) const;
  [[nodiscard]] Gbps hostLinkSpeed(int host) const;
  [[nodiscard]] std::int64_t switchEgressBytes(int sw, int port) const;
  [[nodiscard]] const PortCounters& switchPortCounters(int sw, int port) const;
  [[nodiscard]] std::uint64_t totalDrops() const;
  [[nodiscard]] int numSwitches() const { return static_cast<int>(switches_.size()); }
  [[nodiscard]] int numHosts() const { return static_cast<int>(hosts_.size()); }
  [[nodiscard]] int switchPortCount(int sw) const {
    return static_cast<int>(switches_[sw].ports.size());
  }
  [[nodiscard]] const NetworkConfig& config() const { return config_; }

  /// Maximum egress occupancy seen anywhere (lossless-invariant tests).
  [[nodiscard]] std::int64_t peakQueueBytes() const;

 private:
  static constexpr std::uint32_t kNil = 0xFFFFFFFFu;

  /// Free-list pool of packet nodes backing every egress queue. Chunked so
  /// node indices stay stable as the pool grows; steady-state enqueue/dequeue
  /// performs zero heap allocations (the deque-per-class layout it replaces
  /// allocated and freed block storage on every burst).
  class PacketPool {
   public:
    std::uint32_t acquire(Packet&& packet);
    /// Frees the node and hands the packet back by value.
    Packet release(std::uint32_t idx);
    [[nodiscard]] std::uint32_t nextOf(std::uint32_t idx) const {
      return nodeAt(idx).next;
    }
    void linkAfter(std::uint32_t idx, std::uint32_t next) { nodeAt(idx).next = next; }
    [[nodiscard]] std::size_t capacity() const { return chunks_.size() * kChunkNodes; }

   private:
    static constexpr std::size_t kChunkNodes = 256;
    struct Node {
      Packet packet;
      std::uint32_t next = kNil;  ///< FIFO successor, or free-list link
    };
    [[nodiscard]] Node& nodeAt(std::uint32_t idx) const {
      return chunks_[idx / kChunkNodes][idx % kChunkNodes];
    }
    std::vector<std::unique_ptr<Node[]>> chunks_;
    std::uint32_t freeHead_ = kNil;
  };

  struct EgressQueue {
    EgressQueue() {
      head.fill(kNil);
      tail.fill(kNil);
    }
    std::array<std::uint32_t, kNumClasses> head;  ///< pooled FIFO per class
    std::array<std::uint32_t, kNumClasses> tail;
    std::array<std::int64_t, kNumClasses> bytes{};
    std::array<bool, kNumClasses> paused{};
    std::int64_t totalBytes = 0;
  };

  struct Port {
    NodeRef peer;
    int peerPort = -1;
    Gbps speed{0.0};
    TimeNs propDelay = 0;
    EgressQueue egress;
    Time busyUntil = 0;
    bool serviceScheduled = false;
    // Fault state (see setPortUp/setPortStalled/setPortImpairment).
    bool up = true;
    bool stalled = false;
    double dropProb = 0.0;
    double corruptProb = 0.0;
    // PFC ingress accounting (switch ports only).
    std::array<std::int64_t, kNumClasses> ingressBytes{};
    std::array<bool, kNumClasses> pauseSent{};
    PortCounters counters;
  };

  struct SwitchDev {
    std::vector<Port> ports;
    Forwarder forwarder;
    TimeNs extraLatency = 0;
  };

  struct HostDev {
    Port nic;
    std::function<void(const Packet&)> receiver;
    std::function<void(const Packet&)> sniffer;
  };

  /// Mutable engine-side state owned by one shard. Keyed by the shard of
  /// the node an operation touches, so parallel shard threads never share
  /// a pool node, a counter, or an RNG stream.
  struct ShardState {
    PacketPool pool;
    std::uint64_t totalDrops = 0;
    std::uint64_t faultDrops = 0;
    std::int64_t peakQueueBytes = 0;
    Rng faultRng;  ///< impairment draws only; untouched when no fault armed
  };

  [[nodiscard]] int shardOf(NodeRef node) const {
    return node.kind == NodeRef::Kind::kSwitch ? switchShard_[node.idx]
                                               : hostShard_[node.idx];
  }
  ShardState& stateFor(NodeRef node) { return shardState_[shardOf(node)]; }

  Port& portOf(NodeRef node, int port);
  void enqueueEgress(NodeRef node, int port, Packet packet);
  void kickService(NodeRef node, int port);
  void serviceEgress(NodeRef node, int port);
  void arriveAtSwitch(int sw, int inPort, Packet packet);
  void deliverToHost(int host, const Packet& packet);
  void accountIngress(int sw, int inPort, const Packet& packet);
  void releaseIngress(int sw, int inPort, const Packet& packet);
  void sendPause(int sw, int inPort, int cls, bool pause);

  Simulator* sim_;
  NetworkConfig config_;
  std::vector<SwitchDev> switches_;
  std::vector<HostDev> hosts_;
  std::vector<ShardState> shardState_;  ///< one per simulator shard
  std::vector<int> switchShard_;        ///< owning shard per switch (default 0)
  std::vector<int> hostShard_;          ///< owning shard per host (default 0)
};

}  // namespace sdt::sim
