// Per-packet update-consistency checker (Reitblatt et al.'s property for
// two-phase network updates): during a live reconfiguration every packet
// must be forwarded end-to-end by exactly one configuration epoch's rules —
// never a mix of old- and new-epoch rules, and never dropped mid-path
// because the epoch it was stamped with was garbage-collected under it.
//
// The projected-network builder calls onLookup() from every switch's
// forwarder, so the checker sees each hop's (stamp epoch, matched-rule
// epoch) in simulation event order. Tests assert violations().empty() after
// driving traffic through a reconfiguration window.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/strings.hpp"

namespace sdt::sim {

class EpochConsistencyChecker {
 public:
  enum class ViolationKind : std::uint8_t {
    /// One packet matched concrete rules of two different epochs.
    kMixedEpoch,
    /// A packet that already matched at least one hop hit a table miss —
    /// its epoch's rules vanished under it (GC before the drain finished,
    /// or a rollback deleted rules an in-flight packet depended on).
    kMidPathMiss,
  };

  struct Violation {
    ViolationKind kind = ViolationKind::kMixedEpoch;
    std::uint64_t packetId = 0;
    int sw = -1;                    ///< physical switch where it was detected
    std::uint32_t firstEpoch = 0;   ///< epoch of the packet's earlier hops
    std::uint32_t secondEpoch = 0;  ///< conflicting epoch (kMixedEpoch only)

    [[nodiscard]] std::string describe() const {
      if (kind == ViolationKind::kMixedEpoch) {
        return strFormat("packet %llu matched epoch %u then epoch %u at switch %d",
                         static_cast<unsigned long long>(packetId), firstEpoch,
                         secondEpoch, sw);
      }
      return strFormat("packet %llu (epoch %u) hit a mid-path miss at switch %d",
                       static_cast<unsigned long long>(packetId), firstEpoch, sw);
    }
  };

  /// Record one flow-table lookup. `ruleEpoch` is the matched entry's
  /// cookie epoch (0 = epoch-wildcard rule, which is consistent with any
  /// epoch); ignored when `matched` is false.
  void onLookup(std::uint64_t packetId, int sw, bool matched,
                std::uint32_t ruleEpoch) {
    // Forwarders on different shards call in concurrently during parallel
    // runs; the checker is a cross-cutting observer, so it serializes here
    // rather than forcing the data plane onto one shard.
    const std::lock_guard<std::mutex> lock(mu_);
    ++lookups_;
    Track& t = tracks_[packetId];
    if (!matched) {
      if (t.matchedHops > 0) {
        violations_.push_back({ViolationKind::kMidPathMiss, packetId, sw,
                               t.firstRuleEpoch, 0});
      }
      return;
    }
    ++t.matchedHops;
    if (ruleEpoch == 0) return;  // wildcard rule: consistent with anything
    if (t.firstRuleEpoch == 0) {
      t.firstRuleEpoch = ruleEpoch;
    } else if (t.firstRuleEpoch != ruleEpoch) {
      violations_.push_back({ViolationKind::kMixedEpoch, packetId, sw,
                             t.firstRuleEpoch, ruleEpoch});
    }
  }

  [[nodiscard]] const std::vector<Violation>& violations() const { return violations_; }
  [[nodiscard]] std::uint64_t lookups() const { return lookups_; }
  /// Packets that matched at least one concrete (non-wildcard-epoch) rule —
  /// evidence the checker actually exercised epoch-stamped paths.
  [[nodiscard]] std::size_t stampedPackets() const {
    std::size_t n = 0;
    for (const auto& [id, t] : tracks_) n += t.firstRuleEpoch != 0;
    return n;
  }

  void reset() {
    tracks_.clear();
    violations_.clear();
    lookups_ = 0;
  }

 private:
  struct Track {
    std::uint32_t firstRuleEpoch = 0;  ///< first concrete epoch matched
    std::uint32_t matchedHops = 0;
  };

  std::mutex mu_;
  std::unordered_map<std::uint64_t, Track> tracks_;
  std::vector<Violation> violations_;
  std::uint64_t lookups_ = 0;
};

}  // namespace sdt::sim
