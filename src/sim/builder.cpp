#include "sim/builder.hpp"

#include <cassert>
#include <unordered_map>

#include "sim/consistency.hpp"

namespace sdt::sim {

BuiltNetwork buildLogicalNetwork(Simulator& sim, const topo::Topology& topo,
                                 const routing::RoutingAlgorithm& routing,
                                 const NetworkConfig& config) {
  BuiltNetwork built;
  built.net = std::make_unique<Network>(sim, config);
  Network& net = *built.net;

  // Per-switch host delivery map: host -> local port.
  std::vector<std::vector<std::pair<topo::HostId, topo::PortId>>> hostPortOf(
      static_cast<std::size_t>(topo.numSwitches()));
  for (const topo::HostLink& hl : topo.hostLinks()) {
    hostPortOf[hl.attach.sw].emplace_back(hl.host, hl.attach.port);
  }

  for (topo::SwitchId sw = 0; sw < topo.numSwitches(); ++sw) {
    const auto& delivery = hostPortOf[sw];
    Forwarder forwarder = [&routing, &topo, sw, delivery](const Packet& pkt,
                                                          int /*inPort*/) {
      ForwardResult result;
      if (topo.hostSwitch(pkt.dstHost) == sw) {
        for (const auto& [host, port] : delivery) {
          if (host == pkt.dstHost) {
            result.drop = false;
            result.outPort = port;
            result.vc = pkt.vc;
            return result;
          }
        }
        return result;  // host map inconsistency -> drop
      }
      // Per-destination ECMP hash, matching the controller's proactive
      // flow-table compilation so both planes pick identical paths.
      auto hop = routing.nextHop(sw, pkt.dstHost, pkt.vc,
                                 static_cast<std::uint64_t>(pkt.dstHost));
      if (!hop) return result;
      result.drop = false;
      result.outPort = hop.value().outPort;
      result.vc = hop.value().vc;
      return result;
    };
    const int id = net.addSwitch(topo.radix(sw), std::move(forwarder), /*extraLatency=*/0);
    assert(id == sw);
    (void)id;
  }
  for (topo::HostId h = 0; h < topo.numHosts(); ++h) {
    const int id = net.addHost();
    assert(id == h);
    (void)id;
  }
  for (const topo::Link& link : topo.links()) {
    net.connectSwitches(link.a.sw, link.a.port, link.b.sw, link.b.port, link.speed,
                        config.linkPropDelay);
  }
  for (const topo::HostLink& hl : topo.hostLinks()) {
    net.connectHost(hl.host, hl.attach.sw, hl.attach.port, hl.speed,
                    config.hostPropDelay);
  }
  net.partitionShards();
  return built;
}

BuiltNetwork buildProjectedNetwork(Simulator& sim, const topo::Topology& topo,
                                   const projection::Projection& projection,
                                   const projection::Plant& plant,
                                   std::vector<std::shared_ptr<openflow::Switch>>
                                       programmedSwitches,
                                   const NetworkConfig& config,
                                   const CrossbarModel& crossbar,
                                   EpochConsistencyChecker* checker) {
  assert(static_cast<int>(programmedSwitches.size()) == plant.numSwitches());
  BuiltNetwork built;
  built.net = std::make_unique<Network>(sim, config);
  built.ofSwitches = std::move(programmedSwitches);
  Network& net = *built.net;

  for (int psw = 0; psw < plant.numSwitches(); ++psw) {
    std::shared_ptr<openflow::Switch> ofs = built.ofSwitches[psw];
    assert(ofs != nullptr && ofs->numPorts() >= plant.switches[psw].numPorts);
    Forwarder forwarder = [ofs, checker, psw](const Packet& pkt, int inPort) {
      const openflow::ForwardDecision decision =
          ofs->process(pkt.header(inPort), pkt.wireBytes());
      if (checker != nullptr) {
        checker->onLookup(pkt.id, psw, decision.matched, decision.ruleEpoch);
      }
      ForwardResult result;
      result.drop = decision.drop;
      result.outPort = decision.outPort;
      result.vc = decision.vc >= 0 ? decision.vc : pkt.vc;
      result.epoch = decision.stampEpoch;
      return result;
    };
    const TimeNs extra = crossbar.extra(projection.subSwitchCountOn(psw));
    const int id = net.addSwitch(plant.switches[psw].numPorts, std::move(forwarder), extra);
    assert(id == psw);
    (void)id;
  }
  for (topo::HostId h = 0; h < topo.numHosts(); ++h) {
    const int id = net.addHost();
    assert(id == h);
    (void)id;
  }

  // The plant's fixed cabling is installed once and never moves (§IV), so
  // wire *every* fixed cable — not just the ones this projection realized.
  // Spare cables carry no flow entries (no traffic can touch them), but they
  // are exactly the healthy ports SdtController::repair() re-projects onto
  // after a failure, so the data plane must have them. Realized links run at
  // the logical link's configured speed (breakout), spares at native port
  // speed. On-demand optical circuits exist only while realized.
  std::unordered_map<int, Gbps> selfSpeed;
  std::unordered_map<int, Gbps> interSpeed;
  for (const projection::RealizedLink& rl : projection.realizedLinks()) {
    const topo::Link& logical = topo.link(rl.logicalLink);
    if (rl.optical) {
      const projection::PhysLink& phys = projection.opticalCircuits()[rl.physLink];
      // Optical circuits detour through the OCS: a little extra fiber.
      const TimeNs prop =
          (rl.interSwitch ? config.interSwitchPropDelay : config.selfLinkPropDelay) + 25;
      net.connectSwitches(phys.a.sw, phys.a.port, phys.b.sw, phys.b.port, logical.speed,
                          prop);
    } else if (rl.interSwitch) {
      interSpeed.emplace(rl.physLink, logical.speed);
    } else {
      selfSpeed.emplace(rl.physLink, logical.speed);
    }
  }
  for (std::size_t i = 0; i < plant.selfLinks.size(); ++i) {
    const projection::PhysLink& phys = plant.selfLinks[i];
    const auto it = selfSpeed.find(static_cast<int>(i));
    const Gbps speed =
        it != selfSpeed.end() ? it->second : plant.switches[phys.a.sw].portSpeed;
    net.connectSwitches(phys.a.sw, phys.a.port, phys.b.sw, phys.b.port, speed,
                        config.selfLinkPropDelay);
  }
  for (std::size_t i = 0; i < plant.interLinks.size(); ++i) {
    const projection::PhysLink& phys = plant.interLinks[i];
    const auto it = interSpeed.find(static_cast<int>(i));
    const Gbps speed =
        it != interSpeed.end() ? it->second : plant.switches[phys.a.sw].portSpeed;
    net.connectSwitches(phys.a.sw, phys.a.port, phys.b.sw, phys.b.port, speed,
                        config.interSwitchPropDelay);
  }
  for (topo::HostId h = 0; h < topo.numHosts(); ++h) {
    const projection::PhysPort pp = projection.hostPortOf(h);
    net.connectHost(h, pp.sw, pp.port, topo.hostLink(h).speed, config.hostPropDelay);
  }
  net.partitionShards();
  return built;
}

}  // namespace sdt::sim
