// Minimal JSON value + recursive-descent parser + writer.
//
// SDT's controller consumes user-written topology configuration files
// (paper §V, Fig. 2): small JSON documents naming a topology, its parameters,
// routing strategy, and deployment options. This parser supports the full
// JSON grammar except for \u escapes beyond Latin-1 (config files are ASCII).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.hpp"

namespace sdt::json {

class Value;
using Array = std::vector<Value>;
using Object = std::map<std::string, Value>;

enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

/// A JSON value with value semantics. Numbers are stored as double; integral
/// accessors round-trip exactly for |x| < 2^53 which covers every config knob.
class Value {
 public:
  Value() : type_(Type::kNull) {}
  Value(std::nullptr_t) : type_(Type::kNull) {}                  // NOLINT
  Value(bool b) : type_(Type::kBool), bool_(b) {}                // NOLINT
  Value(double n) : type_(Type::kNumber), num_(n) {}             // NOLINT
  Value(int n) : type_(Type::kNumber), num_(n) {}                // NOLINT
  Value(std::int64_t n) : type_(Type::kNumber), num_(static_cast<double>(n)) {}  // NOLINT
  Value(const char* s) : type_(Type::kString), str_(s) {}        // NOLINT
  Value(std::string s) : type_(Type::kString), str_(std::move(s)) {}  // NOLINT
  Value(Array a) : type_(Type::kArray), arr_(std::move(a)) {}    // NOLINT
  Value(Object o) : type_(Type::kObject), obj_(std::move(o)) {}  // NOLINT

  [[nodiscard]] Type type() const { return type_; }
  [[nodiscard]] bool isNull() const { return type_ == Type::kNull; }
  [[nodiscard]] bool isBool() const { return type_ == Type::kBool; }
  [[nodiscard]] bool isNumber() const { return type_ == Type::kNumber; }
  [[nodiscard]] bool isString() const { return type_ == Type::kString; }
  [[nodiscard]] bool isArray() const { return type_ == Type::kArray; }
  [[nodiscard]] bool isObject() const { return type_ == Type::kObject; }

  [[nodiscard]] bool asBool() const { return bool_; }
  [[nodiscard]] double asDouble() const { return num_; }
  [[nodiscard]] std::int64_t asInt() const { return static_cast<std::int64_t>(num_); }
  [[nodiscard]] const std::string& asString() const { return str_; }
  [[nodiscard]] const Array& asArray() const { return arr_; }
  [[nodiscard]] Array& asArray() { return arr_; }
  [[nodiscard]] const Object& asObject() const { return obj_; }
  [[nodiscard]] Object& asObject() { return obj_; }

  /// Object member access; returns null value when missing or not an object.
  [[nodiscard]] const Value& at(const std::string& key) const;
  [[nodiscard]] bool contains(const std::string& key) const {
    return isObject() && obj_.count(key) > 0;
  }

  /// Typed getters with defaults, for ergonomic config reading.
  [[nodiscard]] std::int64_t getInt(const std::string& key, std::int64_t fallback) const;
  [[nodiscard]] double getDouble(const std::string& key, double fallback) const;
  [[nodiscard]] bool getBool(const std::string& key, bool fallback) const;
  [[nodiscard]] std::string getString(const std::string& key, std::string fallback) const;

  /// Serialize. `indent` < 0 means compact single-line output.
  [[nodiscard]] std::string dump(int indent = -1) const;

 private:
  void dumpTo(std::string& out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  Array arr_;
  Object obj_;
};

/// Parse a JSON document. Errors carry a byte offset and reason.
Result<Value> parse(std::string_view text);

/// Parse the file at `path` (convenience for config loading).
Result<Value> parseFile(const std::string& path);

}  // namespace sdt::json
