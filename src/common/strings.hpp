// Small string helpers shared across modules.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace sdt {

/// Split `s` on `delim`, keeping empty fields.
std::vector<std::string> split(std::string_view s, char delim);

/// Strip ASCII whitespace from both ends.
std::string_view trim(std::string_view s);

bool startsWith(std::string_view s, std::string_view prefix);

/// printf-style formatting into a std::string.
std::string strFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// "1.50 KiB" / "23.4 MiB" style human-readable byte counts.
std::string humanBytes(std::int64_t bytes);

/// "12.3us" / "4.56ms" / "1.23s" style human-readable durations (ns input).
std::string humanTime(std::int64_t ns);

}  // namespace sdt
