// Deterministic PRNG: xoshiro256** seeded via splitmix64.
//
// Every stochastic component in SDT takes an explicit seed so that tests and
// benchmark tables are reproducible bit-for-bit across runs and machines.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

namespace sdt {

namespace detail {
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}
}  // namespace detail

/// xoshiro256** — fast, high-quality, 2^256-1 period. Satisfies
/// UniformRandomBitGenerator so it composes with <random> distributions.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5D1745D1745D1745ULL) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = detail::splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return std::numeric_limits<result_type>::max(); }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t below(std::uint64_t bound) {
    // Lemire's nearly-divisionless method is overkill here; simple rejection.
    const std::uint64_t threshold = max() - max() % bound;
    std::uint64_t x = (*this)();
    while (x >= threshold) x = (*this)();
    return x % bound;
  }

  /// Uniform integer in [lo, hi] inclusive. The width is computed in
  /// uint64_t (where wraparound is defined): `hi - lo + 1` in signed
  /// arithmetic overflows — UB — for spans over 2^63, e.g.
  /// between(INT64_MIN, INT64_MAX). A full-range span wraps to 0 and is
  /// served by a raw draw (every 64-bit pattern is a valid result).
  std::int64_t between(std::int64_t lo, std::int64_t hi) {
    const std::uint64_t span =
        static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
    if (span == 0) return static_cast<std::int64_t>((*this)());
    return static_cast<std::int64_t>(static_cast<std::uint64_t>(lo) + below(span));
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Exponentially distributed with the given mean.
  double exponential(double mean) {
    double u = uniform();
    while (u <= 0.0) u = uniform();
    return -mean * std::log(u);
  }

  /// Fisher-Yates shuffle.
  template <typename Container>
  void shuffle(Container& c) {
    for (std::size_t i = c.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(c[i - 1], c[j]);
    }
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4]{};
};

}  // namespace sdt
