// Minimal Result<T, E> (std::expected is C++23; we target C++20).
//
// Usage:
//   Result<Projection> r = project(...);
//   if (!r) return fail(r.error());
//   use(r.value());
#pragma once

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace sdt {

/// Default error payload: a human-readable message.
struct Error {
  std::string message;
};

inline Error makeError(std::string msg) { return Error{std::move(msg)}; }

template <typename T, typename E = Error>
class Result {
 public:
  Result(T value) : storage_(std::in_place_index<0>, std::move(value)) {}  // NOLINT: implicit by design
  Result(E error) : storage_(std::in_place_index<1>, std::move(error)) {}  // NOLINT: implicit by design

  [[nodiscard]] bool ok() const { return storage_.index() == 0; }
  explicit operator bool() const { return ok(); }

  [[nodiscard]] T& value() & {
    assert(ok());
    return std::get<0>(storage_);
  }
  [[nodiscard]] const T& value() const& {
    assert(ok());
    return std::get<0>(storage_);
  }
  [[nodiscard]] T&& value() && {
    assert(ok());
    return std::get<0>(std::move(storage_));
  }

  [[nodiscard]] const E& error() const {
    assert(!ok());
    return std::get<1>(storage_);
  }

  [[nodiscard]] T valueOr(T fallback) const {
    return ok() ? std::get<0>(storage_) : std::move(fallback);
  }

 private:
  std::variant<T, E> storage_;
};

/// Result specialization-like helper for operations with no payload.
template <typename E = Error>
class Status {
 public:
  Status() = default;
  Status(E error) : error_(std::move(error)), failed_(true) {}  // NOLINT: implicit by design

  [[nodiscard]] bool ok() const { return !failed_; }
  explicit operator bool() const { return ok(); }
  [[nodiscard]] const E& error() const {
    assert(failed_);
    return error_;
  }

  static Status okStatus() { return Status{}; }

 private:
  E error_{};
  bool failed_ = false;
};

using StatusOr = Status<Error>;

}  // namespace sdt
