#include "common/log.hpp"

#include <cstdio>

namespace sdt {

namespace {
LogLevel g_level = LogLevel::kWarn;

const char* levelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

void setLogLevel(LogLevel level) { g_level = level; }
LogLevel logLevel() { return g_level; }

void logMessage(LogLevel level, const std::string& msg) {
  if (level < g_level) return;
  std::fprintf(stderr, "[sdt %-5s] %s\n", levelName(level), msg.c_str());
}

}  // namespace sdt
