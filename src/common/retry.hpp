// Bounded retry with exponential backoff and deterministic jitter.
//
// Models the controller's control-channel resilience: a flow-mod install can
// fail in flight (switch busy, TCP hiccup on the management network), and the
// controller retries with capped exponential backoff before declaring the
// switch unreachable. All time here is *modeled* simulated time — the policy
// returns how long the exchange took so callers (SdtController::repair) can
// fold it into reconfiguration-time accounting; nothing sleeps.
//
// Jitter is deterministic: drawn from an Rng seeded by (policy seed, stream
// id), so two runs of the same repair produce bit-identical backoff totals
// regardless of thread interleaving in SweepRunner sweeps.
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "common/units.hpp"

namespace sdt::retry {

struct RetryPolicy {
  int maxAttempts = 4;                    ///< total tries, including the first
  TimeNs attemptTimeout = usToNs(100.0);  ///< modeled cost of one failed attempt
  TimeNs baseBackoff = usToNs(50.0);      ///< wait before the 2nd attempt
  double backoffMultiplier = 2.0;         ///< growth per further attempt
  TimeNs maxBackoff = msToNs(5.0);        ///< cap on any single wait
  /// Jitter spread: each wait is backoff * uniform[1 - jitter, 1]. Zero
  /// disables jitter entirely (no RNG draw).
  double jitter = 0.5;
  std::uint64_t seed = 0xBACC0FFULL;
};

struct RetryResult {
  bool succeeded = false;
  int attempts = 0;     ///< attempts actually made (>= 1 unless maxAttempts < 1)
  TimeNs elapsed = 0;   ///< modeled time: failed-attempt timeouts + backoffs
  /// True when the policy allowed zero attempts (maxAttempts < 1): nothing
  /// ran, so `succeeded == false` means "never tried", not "tried and
  /// failed". Callers treating failure as "switch unreachable" must check
  /// this before acting on a result that never touched the network.
  bool neverAttempted = false;
};

/// Aggregate retry accounting across many exchanges. Dependency-free so
/// common/ stays at the bottom of the library DAG; callers that keep an
/// obs registry sync these totals into it.
struct RetryCounters {
  std::uint64_t attempts = 0;   ///< attempt() invocations
  std::uint64_t retries = 0;    ///< failed attempts that waited and retried
  std::uint64_t exhausted = 0;  ///< exchanges that ran out of attempts
  std::uint64_t backoffNs = 0;  ///< modeled backoff time accumulated
};

/// Run `attempt(i)` (i = 1-based attempt number, returns true on success) up
/// to policy.maxAttempts times. `streamId` decorrelates jitter across
/// concurrent logical streams (e.g. one per switch being repaired).
/// `counters`, when given, accumulates across calls.
template <typename AttemptFn>
RetryResult retryWithBackoff(const RetryPolicy& policy, std::uint64_t streamId,
                             AttemptFn&& attempt,
                             RetryCounters* counters = nullptr) {
  RetryResult result;
  if (policy.maxAttempts < 1) {
    // Degenerate policy: no attempt budget at all. Make the "nothing ran"
    // outcome explicit (and count it as an exhausted exchange) instead of
    // returning a silent attempts == 0 failure.
    result.neverAttempted = true;
    if (counters) ++counters->exhausted;
    return result;
  }
  std::uint64_t mix = policy.seed ^ streamId;
  Rng rng(detail::splitmix64(mix));
  // All backoff arithmetic is clamped at maxBackoff *as a double*, before
  // any cast: an uncapped `backoff *= multiplier` exceeds 2^63 within ~64
  // attempts and casting such a double to TimeNs is undefined behavior.
  const double maxBackoff = static_cast<double>(policy.maxBackoff);
  double backoff = static_cast<double>(policy.baseBackoff);
  if (backoff > maxBackoff) backoff = maxBackoff;
  for (int i = 1; i <= policy.maxAttempts; ++i) {
    ++result.attempts;
    if (counters) ++counters->attempts;
    if (attempt(i)) {
      result.succeeded = true;
      return result;
    }
    result.elapsed += policy.attemptTimeout;  // waited the full ack window
    if (i == policy.maxAttempts) break;
    if (counters) ++counters->retries;
    double wait = backoff;
    if (policy.jitter > 0.0) {
      wait *= 1.0 - policy.jitter * rng.uniform();
    }
    if (wait > maxBackoff) wait = maxBackoff;
    const auto capped = static_cast<TimeNs>(wait);
    result.elapsed += capped;
    if (counters) counters->backoffNs += static_cast<std::uint64_t>(capped);
    backoff *= policy.backoffMultiplier;
    if (backoff > maxBackoff) backoff = maxBackoff;
  }
  if (counters && !result.succeeded) ++counters->exhausted;
  return result;
}

}  // namespace sdt::retry
