#include "common/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/strings.hpp"

namespace sdt::json {

namespace {
const Value kNullValue{};

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<Value> run() {
    skipWs();
    auto v = parseValue();
    if (!v) return v;
    skipWs();
    if (pos_ != text_.size()) return fail("trailing characters after document");
    return v;
  }

 private:
  Result<Value> fail(const std::string& why) {
    return makeError(strFormat("JSON parse error at offset %zu: %s", pos_, why.c_str()));
  }

  void skipWs() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else if (c == '/' && pos_ + 1 < text_.size() && text_[pos_ + 1] == '/') {
        // Permit // comments: config files are written by humans.
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<Value> parseValue() {
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{': return parseObject();
      case '[': return parseArray();
      case '"': {
        auto s = parseString();
        if (!s) return s.error();
        return Value{std::move(s).value()};
      }
      case 't':
        if (text_.substr(pos_, 4) == "true") {
          pos_ += 4;
          return Value{true};
        }
        return fail("expected 'true'");
      case 'f':
        if (text_.substr(pos_, 5) == "false") {
          pos_ += 5;
          return Value{false};
        }
        return fail("expected 'false'");
      case 'n':
        if (text_.substr(pos_, 4) == "null") {
          pos_ += 4;
          return Value{nullptr};
        }
        return fail("expected 'null'");
      default: return parseNumber();
    }
  }

  Result<Value> parseObject() {
    ++pos_;  // '{'
    Object obj;
    skipWs();
    if (consume('}')) return Value{std::move(obj)};
    while (true) {
      skipWs();
      if (pos_ >= text_.size() || text_[pos_] != '"') return fail("expected object key");
      auto key = parseString();
      if (!key) return key.error();
      skipWs();
      if (!consume(':')) return fail("expected ':' after object key");
      skipWs();
      auto val = parseValue();
      if (!val) return val;
      obj.emplace(std::move(key).value(), std::move(val).value());
      skipWs();
      if (consume(',')) continue;
      if (consume('}')) return Value{std::move(obj)};
      return fail("expected ',' or '}' in object");
    }
  }

  Result<Value> parseArray() {
    ++pos_;  // '['
    Array arr;
    skipWs();
    if (consume(']')) return Value{std::move(arr)};
    while (true) {
      skipWs();
      auto val = parseValue();
      if (!val) return val;
      arr.push_back(std::move(val).value());
      skipWs();
      if (consume(',')) continue;
      if (consume(']')) return Value{std::move(arr)};
      return fail("expected ',' or ']' in array");
    }
  }

  Result<std::string> parseString() {
    ++pos_;  // opening quote
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return makeError("truncated \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code += static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code += static_cast<unsigned>(h - 'A' + 10);
              else return makeError("bad hex digit in \\u escape");
            }
            // Encode as UTF-8 (BMP only; config files never need surrogates).
            if (code < 0x80) {
              out.push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out.push_back(static_cast<char>(0xC0 | (code >> 6)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out.push_back(static_cast<char>(0xE0 | (code >> 12)));
              out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default: return makeError("unknown escape sequence");
        }
      } else {
        out.push_back(c);
      }
    }
    return makeError("unterminated string");
  }

  Result<Value> parseNumber() {
    const std::size_t start = pos_;
    if (consume('-')) {
    }
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    if (consume('.')) {
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    if (pos_ == start) return fail("expected a value");
    const std::string num{text_.substr(start, pos_ - start)};
    char* end = nullptr;
    const double v = std::strtod(num.c_str(), &end);
    if (end != num.c_str() + num.size()) return fail("malformed number");
    return Value{v};
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

void dumpString(std::string& out, const std::string& s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += strFormat("\\u%04x", c);
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}
}  // namespace

const Value& Value::at(const std::string& key) const {
  if (!isObject()) return kNullValue;
  const auto it = obj_.find(key);
  return it == obj_.end() ? kNullValue : it->second;
}

std::int64_t Value::getInt(const std::string& key, std::int64_t fallback) const {
  const Value& v = at(key);
  return v.isNumber() ? v.asInt() : fallback;
}

double Value::getDouble(const std::string& key, double fallback) const {
  const Value& v = at(key);
  return v.isNumber() ? v.asDouble() : fallback;
}

bool Value::getBool(const std::string& key, bool fallback) const {
  const Value& v = at(key);
  return v.isBool() ? v.asBool() : fallback;
}

std::string Value::getString(const std::string& key, std::string fallback) const {
  const Value& v = at(key);
  return v.isString() ? v.asString() : fallback;
}

void Value::dumpTo(std::string& out, int indent, int depth) const {
  const auto newline = [&](int d) {
    if (indent >= 0) {
      out.push_back('\n');
      out.append(static_cast<std::size_t>(indent * d), ' ');
    }
  };
  switch (type_) {
    case Type::kNull: out += "null"; break;
    case Type::kBool: out += bool_ ? "true" : "false"; break;
    case Type::kNumber: {
      if (std::floor(num_) == num_ && std::abs(num_) < 9.0e15) {
        out += strFormat("%lld", static_cast<long long>(num_));
      } else {
        out += strFormat("%.17g", num_);
      }
      break;
    }
    case Type::kString: dumpString(out, str_); break;
    case Type::kArray: {
      out.push_back('[');
      bool first = true;
      for (const auto& v : arr_) {
        if (!first) out.push_back(',');
        first = false;
        newline(depth + 1);
        v.dumpTo(out, indent, depth + 1);
      }
      if (!arr_.empty()) newline(depth);
      out.push_back(']');
      break;
    }
    case Type::kObject: {
      out.push_back('{');
      bool first = true;
      for (const auto& [k, v] : obj_) {
        if (!first) out.push_back(',');
        first = false;
        newline(depth + 1);
        dumpString(out, k);
        out.push_back(':');
        if (indent >= 0) out.push_back(' ');
        v.dumpTo(out, indent, depth + 1);
      }
      if (!obj_.empty()) newline(depth);
      out.push_back('}');
      break;
    }
  }
}

std::string Value::dump(int indent) const {
  std::string out;
  dumpTo(out, indent, 0);
  return out;
}

Result<Value> parse(std::string_view text) { return Parser{text}.run(); }

Result<Value> parseFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return makeError("cannot open file: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return parse(ss.str());
}

}  // namespace sdt::json
