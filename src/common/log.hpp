// Tiny leveled logger. Not thread-safe by design: the simulator core is
// single-threaded (discrete-event); benches that parallelize do so across
// processes, not within an engine.
#pragma once

#include <sstream>
#include <string>

namespace sdt {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global minimum level; messages below it are discarded.
void setLogLevel(LogLevel level);
LogLevel logLevel();

void logMessage(LogLevel level, const std::string& msg);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { logMessage(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

#define SDT_LOG(level)                          \
  if (::sdt::logLevel() <= ::sdt::LogLevel::level) \
  ::sdt::detail::LogLine(::sdt::LogLevel::level)

#define SDT_DEBUG SDT_LOG(kDebug)
#define SDT_INFO SDT_LOG(kInfo)
#define SDT_WARN SDT_LOG(kWarn)
#define SDT_ERROR SDT_LOG(kError)

}  // namespace sdt
