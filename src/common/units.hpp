// Time, size, and rate units used across SDT.
//
// Simulation time is an integral count of nanoseconds (sim::Time would be a
// circular name here, so the alias lives in common). Rates are kept in Gbps
// (== bits/ns) so that  bytes * 8 / gbps  yields nanoseconds directly.
#pragma once

#include <cstdint>

namespace sdt {

/// Simulation time in nanoseconds.
using TimeNs = std::int64_t;

inline constexpr TimeNs kNsPerUs = 1'000;
inline constexpr TimeNs kNsPerMs = 1'000'000;
inline constexpr TimeNs kNsPerSec = 1'000'000'000;

constexpr TimeNs usToNs(double us) { return static_cast<TimeNs>(us * kNsPerUs); }
constexpr TimeNs msToNs(double ms) { return static_cast<TimeNs>(ms * kNsPerMs); }
constexpr TimeNs secToNs(double s) { return static_cast<TimeNs>(s * kNsPerSec); }

constexpr double nsToUs(TimeNs t) { return static_cast<double>(t) / kNsPerUs; }
constexpr double nsToMs(TimeNs t) { return static_cast<double>(t) / kNsPerMs; }
constexpr double nsToSec(TimeNs t) { return static_cast<double>(t) / kNsPerSec; }

/// Link/NIC rate in gigabits per second. 1 Gbps == 1 bit per nanosecond,
/// so serialization delay for `bytes` at `gbps` is  bytes*8/gbps  ns.
struct Gbps {
  double value = 0.0;

  constexpr Gbps() = default;
  constexpr explicit Gbps(double v) : value(v) {}

  /// Nanoseconds needed to serialize `bytes` onto a wire of this rate.
  [[nodiscard]] constexpr TimeNs serializationNs(std::int64_t bytes) const {
    return static_cast<TimeNs>(static_cast<double>(bytes) * 8.0 / value);
  }
  /// Bytes transmittable within `ns` nanoseconds at this rate.
  [[nodiscard]] constexpr double bytesIn(TimeNs ns) const {
    return static_cast<double>(ns) * value / 8.0;
  }

  constexpr auto operator<=>(const Gbps&) const = default;
};

constexpr Gbps operator*(Gbps r, double f) { return Gbps{r.value * f}; }
constexpr Gbps operator/(Gbps r, double f) { return Gbps{r.value / f}; }

inline constexpr std::int64_t kKiB = 1024;
inline constexpr std::int64_t kMiB = 1024 * 1024;
inline constexpr std::int64_t kGiB = 1024 * 1024 * 1024;

}  // namespace sdt
