#include "common/strings.hpp"

#include <cstdarg>
#include <cstdio>

namespace sdt {

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view trim(std::string_view s) {
  const auto isSpace = [](char c) {
    return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' || c == '\v';
  };
  while (!s.empty() && isSpace(s.front())) s.remove_prefix(1);
  while (!s.empty() && isSpace(s.back())) s.remove_suffix(1);
  return s;
}

bool startsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string strFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  }
  va_end(args);
  return out;
}

std::string humanBytes(std::int64_t bytes) {
  const char* suffix[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double v = static_cast<double>(bytes);
  int idx = 0;
  while (v >= 1024.0 && idx < 4) {
    v /= 1024.0;
    ++idx;
  }
  return idx == 0 ? strFormat("%lld B", static_cast<long long>(bytes))
                  : strFormat("%.2f %s", v, suffix[idx]);
}

std::string humanTime(std::int64_t ns) {
  if (ns < 1'000) return strFormat("%lldns", static_cast<long long>(ns));
  if (ns < 1'000'000) return strFormat("%.2fus", static_cast<double>(ns) / 1e3);
  if (ns < 1'000'000'000) return strFormat("%.2fms", static_cast<double>(ns) / 1e6);
  return strFormat("%.3fs", static_cast<double>(ns) / 1e9);
}

}  // namespace sdt
