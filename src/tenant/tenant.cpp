#include "tenant/tenant.hpp"

#include <algorithm>
#include <cassert>
#include <map>
#include <set>
#include <unordered_map>

#include "common/strings.hpp"
#include "openflow/flow_table.hpp"
#include "sim/consistency.hpp"

namespace sdt::tenant {

namespace {

/// Key for looking up a physical port in O(log n) maps.
[[nodiscard]] std::pair<int, int> portKey(const projection::PhysPort& p) {
  return {p.sw, p.port};
}

}  // namespace

TenantManager::TenantManager(projection::Plant plant) : plant_(std::move(plant)) {
  const auto n = static_cast<std::size_t>(plant_.numSwitches());
  switches_.reserve(n);
  for (int sw = 0; sw < plant_.numSwitches(); ++sw) {
    const projection::PhysicalSwitchSpec& spec =
        plant_.switches[static_cast<std::size_t>(sw)];
    switches_.push_back(std::make_shared<openflow::Switch>(sw, spec.numPorts,
                                                           spec.flowTableCapacity));
  }
  selfOwner_.assign(plant_.selfLinks.size(), 0);
  interOwner_.assign(plant_.interLinks.size(), 0);
  hostPortOwner_.assign(plant_.hostPorts.size(), 0);
  reserved_.assign(n, 0);
}

std::uint32_t TenantManager::allocateHostBase(int numHosts) const {
  // First-fit over the live slices' [base, base + n) ranges: evicted ranges
  // are reusable (their entries and epoch stamps are gone), so long-running
  // serve loops do not grow the host-id space without bound.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> ranges;
  for (const auto& [id, slice] : slices_) {
    ranges.emplace_back(slice.hostBase,
                        slice.hostBase +
                            static_cast<std::uint32_t>(slice.topology->numHosts()));
  }
  std::sort(ranges.begin(), ranges.end());
  std::uint32_t base = 0;
  for (const auto& [lo, hi] : ranges) {
    if (base + static_cast<std::uint32_t>(numHosts) <= lo) break;
    base = std::max(base, hi);
  }
  return base;
}

Result<AdmissionReport> TenantManager::admit(const TenantSpec& spec) {
  if (spec.topology == nullptr || spec.routing == nullptr) {
    return makeError("tenant admit: topology and routing are required");
  }
  if (nextId_ == 0xFFFF) {
    return makeError("tenant admit: tenant-id space exhausted");
  }
  const std::uint16_t id = nextId_;

  // -- 1. Candidate slice: every switch, but only the FREE cables/ports. ----
  projection::Plant candidate;
  candidate.switches = plant_.switches;
  std::vector<int> candSelfToShared;
  std::vector<int> candInterToShared;
  std::vector<int> candHostToShared;
  for (std::size_t i = 0; i < plant_.selfLinks.size(); ++i) {
    if (selfOwner_[i] != 0) continue;
    candidate.selfLinks.push_back(plant_.selfLinks[i]);
    candSelfToShared.push_back(static_cast<int>(i));
  }
  for (std::size_t i = 0; i < plant_.interLinks.size(); ++i) {
    if (interOwner_[i] != 0) continue;
    candidate.interLinks.push_back(plant_.interLinks[i]);
    candInterToShared.push_back(static_cast<int>(i));
  }
  for (std::size_t i = 0; i < plant_.hostPorts.size(); ++i) {
    if (hostPortOwner_[i] != 0) continue;
    candidate.hostPorts.push_back(plant_.hostPorts[i]);
    candHostToShared.push_back(static_cast<int>(i));
  }
  // No flexPorts: on-demand optical circuits are plant-global state and are
  // not sliced (a slice that needs more links asks for more fixed spares).

  const std::uint32_t hostBase = allocateHostBase(spec.topology->numHosts());
  controller::DeployOptions opts = spec.deploy;
  opts.tenant = id;
  opts.hostAddrBase = hostBase;

  controller::SdtController probe(candidate);
  auto probed = probe.deploy(*spec.topology, *spec.routing, opts);
  if (!probed) {
    return makeError("tenant admit (" + spec.name +
                     "): free cables cannot realize the topology: " +
                     probed.error().message);
  }

  // -- 2. Owned resources = what the probe used + requested spares. ---------
  std::set<int> ownSelf;
  std::set<int> ownInter;
  for (const projection::RealizedLink& rl : probed.value().projection.realizedLinks()) {
    if (rl.interSwitch) {
      ownInter.insert(candInterToShared[static_cast<std::size_t>(rl.physLink)]);
    } else {
      ownSelf.insert(candSelfToShared[static_cast<std::size_t>(rl.physLink)]);
    }
  }
  std::set<int> ownHostPorts;
  {
    std::map<std::pair<int, int>, int> hostPortIdx;
    for (std::size_t i = 0; i < plant_.hostPorts.size(); ++i) {
      hostPortIdx[portKey(plant_.hostPorts[i])] = static_cast<int>(i);
    }
    for (topo::HostId h = 0; h < spec.topology->numHosts(); ++h) {
      const projection::PhysPort pp = probed.value().projection.hostPortOf(h);
      const auto it = hostPortIdx.find(portKey(pp));
      if (it == hostPortIdx.end()) {
        return makeError("tenant admit: projection used an unknown host port");
      }
      ownHostPorts.insert(it->second);
    }
  }
  if (spec.spareSelfLinksPerSwitch > 0) {
    std::vector<int> taken(static_cast<std::size_t>(plant_.numSwitches()), 0);
    for (std::size_t i = 0; i < plant_.selfLinks.size(); ++i) {
      const int sw = plant_.selfLinks[i].a.sw;
      if (selfOwner_[i] != 0 || ownSelf.count(static_cast<int>(i)) > 0) continue;
      if (taken[static_cast<std::size_t>(sw)] >= spec.spareSelfLinksPerSwitch) continue;
      ownSelf.insert(static_cast<int>(i));
      ++taken[static_cast<std::size_t>(sw)];
    }
  }
  if (spec.spareInterLinksPerPair > 0) {
    std::map<std::pair<int, int>, int> taken;
    for (std::size_t i = 0; i < plant_.interLinks.size(); ++i) {
      const projection::PhysLink& pl = plant_.interLinks[i];
      const std::pair<int, int> pair{std::min(pl.a.sw, pl.b.sw),
                                     std::max(pl.a.sw, pl.b.sw)};
      if (interOwner_[i] != 0 || ownInter.count(static_cast<int>(i)) > 0) continue;
      if (taken[pair] >= spec.spareInterLinksPerPair) continue;
      ownInter.insert(static_cast<int>(i));
      ++taken[pair];
    }
  }

  // -- 3. Final slice plant: exactly the owned resources. -------------------
  TenantSlice slice;
  slice.id = id;
  slice.name = spec.name;
  slice.hostBase = hostBase;
  slice.topology = spec.topology;
  slice.routing = spec.routing;
  slice.deployOptions = opts;
  slice.plant.switches = plant_.switches;
  for (const int i : ownSelf) {
    slice.plant.selfLinks.push_back(plant_.selfLinks[static_cast<std::size_t>(i)]);
    slice.selfToShared.push_back(i);
  }
  for (const int i : ownInter) {
    slice.plant.interLinks.push_back(plant_.interLinks[static_cast<std::size_t>(i)]);
    slice.interToShared.push_back(i);
  }
  for (const int i : ownHostPorts) {
    slice.plant.hostPorts.push_back(plant_.hostPorts[static_cast<std::size_t>(i)]);
    slice.hostPortToShared.push_back(i);
  }
  slice.controller = std::make_unique<controller::SdtController>(slice.plant);
  auto deployed = slice.controller->deploy(*spec.topology, *spec.routing, opts);
  if (!deployed) {
    return makeError("tenant admit (" + spec.name +
                     "): slice re-projection failed: " + deployed.error().message);
  }
  slice.deployment = std::move(deployed).value();

  // -- 4. Two-version capacity admission. -----------------------------------
  // Every switch must hold two full epochs of every slice's entries at once:
  // that is exactly the headroom planUpdate() will demand when ANY tenant
  // runs a live reconfiguration, checked now so no admitted slice can be
  // wedged out of its own update window by a later arrival.
  AdmissionReport report;
  report.id = id;
  for (int sw = 0; sw < plant_.numSwitches(); ++sw) {
    const std::size_t mine =
        slice.deployment.switches[static_cast<std::size_t>(sw)]->table().size();
    if (reserved_[static_cast<std::size_t>(sw)] + 2 * mine > capacityOf(sw)) {
      return makeError(strFormat(
          "tenant admit (%s): switch %d two-version capacity exceeded "
          "(%zu reserved + 2x%zu new > %zu)",
          spec.name.c_str(), sw, reserved_[static_cast<std::size_t>(sw)], mine,
          capacityOf(sw)));
    }
  }

  // -- 5. Install: copy the slice's entries into the shared switches. -------
  for (int sw = 0; sw < plant_.numSwitches(); ++sw) {
    const auto& fresh = slice.deployment.switches[static_cast<std::size_t>(sw)];
    for (const openflow::FlowEntry& entry : fresh->table().entries()) {
      if (auto added = switches_[static_cast<std::size_t>(sw)]->table().add(entry);
          !added) {
        // Reservation made this impossible; unwind defensively anyway.
        for (auto& shared : switches_) shared->table().removeByTenant(id);
        return makeError("tenant admit (" + spec.name +
                         "): shared install failed: " + added.error().message);
      }
    }
  }
  // The slice's deployment now lives on the shared data plane.
  slice.deployment.switches = switches_;
  // Stamp the slice's host-facing ingress ports with its scoped epoch: its
  // packets enter pinned to its namespace, and a later per-port flip commits
  // its reconfigs without touching any co-tenant port.
  for (topo::HostId h = 0; h < spec.topology->numHosts(); ++h) {
    const projection::PhysPort pp = slice.deployment.projection.hostPortOf(h);
    switches_[static_cast<std::size_t>(pp.sw)]->setPortIngressEpoch(
        pp.port, slice.deployment.epoch);
  }

  // -- 6. Commit bookkeeping. -----------------------------------------------
  for (const int i : ownSelf) selfOwner_[static_cast<std::size_t>(i)] = id;
  for (const int i : ownInter) interOwner_[static_cast<std::size_t>(i)] = id;
  for (const int i : ownHostPorts) hostPortOwner_[static_cast<std::size_t>(i)] = id;
  report.usedSelfLinks = static_cast<int>(ownSelf.size());
  report.usedInterLinks = static_cast<int>(ownInter.size());
  report.spareSelfLinks =
      static_cast<int>(ownSelf.size()) -
      static_cast<int>(std::count_if(
          slice.deployment.projection.realizedLinks().begin(),
          slice.deployment.projection.realizedLinks().end(),
          [](const projection::RealizedLink& rl) { return !rl.interSwitch; }));
  report.spareInterLinks =
      static_cast<int>(ownInter.size()) -
      slice.deployment.projection.interSwitchLinkCount();
  report.hostPorts = static_cast<int>(ownHostPorts.size());
  report.flowEntries = slice.deployment.totalFlowEntries;

  const auto [it, inserted] = slices_.emplace(id, std::move(slice));
  assert(inserted);
  (void)inserted;
  ++nextId_;
  hostSlots_ = std::max(hostSlots_, static_cast<int>(hostBase) +
                                        spec.topology->numHosts());
  refreshSlice(it->second);
  recomputeReservations();
  for (int sw = 0; sw < plant_.numSwitches(); ++sw) {
    const double frac = capacityOf(sw) == 0
                            ? 0.0
                            : static_cast<double>(reserved_[static_cast<std::size_t>(sw)]) /
                                  static_cast<double>(capacityOf(sw));
    report.peakReservedFraction = std::max(report.peakReservedFraction, frac);
  }
  return report;
}

StatusOr TenantManager::evict(std::uint16_t id) {
  const auto it = slices_.find(id);
  if (it == slices_.end()) {
    return makeError(strFormat("tenant evict: no tenant %u", id));
  }
  const TenantSlice& slice = it->second;
  // GC by cookie namespace: only this tenant's entries can match.
  for (auto& sw : switches_) sw->table().removeByTenant(id);
  for (topo::HostId h = 0; h < slice.topology->numHosts(); ++h) {
    const projection::PhysPort pp = slice.deployment.projection.hostPortOf(h);
    switches_[static_cast<std::size_t>(pp.sw)]->clearPortIngressEpoch(pp.port);
  }
  for (std::uint16_t& owner : selfOwner_) {
    if (owner == id) owner = 0;
  }
  for (std::uint16_t& owner : interOwner_) {
    if (owner == id) owner = 0;
  }
  for (std::uint16_t& owner : hostPortOwner_) {
    if (owner == id) owner = 0;
  }
  sliceEntries_.erase(id);
  slices_.erase(it);
  recomputeReservations();
  return StatusOr::okStatus();
}

const TenantSlice* TenantManager::slice(std::uint16_t id) const {
  const auto it = slices_.find(id);
  return it == slices_.end() ? nullptr : &it->second;
}

TenantSlice* TenantManager::mutableSlice(std::uint16_t id) {
  const auto it = slices_.find(id);
  return it == slices_.end() ? nullptr : &it->second;
}

std::vector<std::uint16_t> TenantManager::tenantIds() const {
  std::vector<std::uint16_t> ids;
  ids.reserve(slices_.size());
  for (const auto& [id, slice] : slices_) ids.push_back(id);
  return ids;
}

std::size_t TenantManager::reservedEntries(int sw) const {
  return reserved_[static_cast<std::size_t>(sw)];
}

std::uint16_t TenantManager::tenantOwningPort(projection::PhysPort p) const {
  for (std::size_t i = 0; i < plant_.selfLinks.size(); ++i) {
    if (selfOwner_[i] == 0) continue;
    const projection::PhysLink& pl = plant_.selfLinks[i];
    if (pl.a == p || pl.b == p) return selfOwner_[i];
  }
  for (std::size_t i = 0; i < plant_.interLinks.size(); ++i) {
    if (interOwner_[i] == 0) continue;
    const projection::PhysLink& pl = plant_.interLinks[i];
    if (pl.a == p || pl.b == p) return interOwner_[i];
  }
  for (std::size_t i = 0; i < plant_.hostPorts.size(); ++i) {
    if (hostPortOwner_[i] != 0 && plant_.hostPorts[i] == p) return hostPortOwner_[i];
  }
  return 0;
}

void TenantManager::refreshSlice(TenantSlice& slice) {
  const auto n = static_cast<std::size_t>(plant_.numSwitches());
  std::vector<std::size_t> entries(n, 0);
  std::vector<std::vector<int>> hostPortsBySwitch(n);
  for (int sw = 0; sw < plant_.numSwitches(); ++sw) {
    entries[static_cast<std::size_t>(sw)] =
        switches_[static_cast<std::size_t>(sw)]->table().countTenant(slice.id);
  }
  for (topo::HostId h = 0; h < slice.topology->numHosts(); ++h) {
    const projection::PhysPort pp = slice.deployment.projection.hostPortOf(h);
    hostPortsBySwitch[static_cast<std::size_t>(pp.sw)].push_back(pp.port);
  }
  slice.scope.clear();
  slice.flipPorts.clear();
  for (int sw = 0; sw < plant_.numSwitches(); ++sw) {
    auto& ports = hostPortsBySwitch[static_cast<std::size_t>(sw)];
    if (entries[static_cast<std::size_t>(sw)] == 0 && ports.empty()) continue;
    std::sort(ports.begin(), ports.end());
    slice.scope.push_back(sw);
    slice.flipPorts.push_back(ports);
  }
  // Egress queues this slice's traffic can occupy: both ends of every owned
  // cable plus its host attachment ports.
  std::set<std::pair<int, int>> watch;
  for (const int i : slice.selfToShared) {
    const projection::PhysLink& pl = plant_.selfLinks[static_cast<std::size_t>(i)];
    watch.insert(portKey(pl.a));
    watch.insert(portKey(pl.b));
  }
  for (const int i : slice.interToShared) {
    const projection::PhysLink& pl = plant_.interLinks[static_cast<std::size_t>(i)];
    watch.insert(portKey(pl.a));
    watch.insert(portKey(pl.b));
  }
  for (const int i : slice.hostPortToShared) {
    watch.insert(portKey(plant_.hostPorts[static_cast<std::size_t>(i)]));
  }
  slice.watchPorts.assign(watch.begin(), watch.end());
  sliceEntries_[slice.id] = std::move(entries);
}

void TenantManager::recomputeReservations() {
  reserved_.assign(static_cast<std::size_t>(plant_.numSwitches()), 0);
  for (const auto& [id, perSwitch] : sliceEntries_) {
    for (std::size_t sw = 0; sw < perSwitch.size(); ++sw) {
      reserved_[sw] += 2 * perSwitch[sw];
    }
  }
}

Result<controller::UpdatePlan> TenantManager::planSliceUpdate(
    std::uint16_t id, const topo::Topology& next,
    const routing::RoutingAlgorithm& routing) {
  const auto it = slices_.find(id);
  if (it == slices_.end()) {
    return makeError(strFormat("tenant planSliceUpdate: no tenant %u", id));
  }
  TenantSlice& slice = it->second;
  auto planned =
      slice.controller->planUpdate(slice.deployment, next, routing, slice.deployOptions);
  if (!planned) return planned.error();
  controller::UpdatePlan plan = std::move(planned).value();

  // Reservation re-check: the update window holds old + new <= 2 x max, and
  // the committed state may be permanently larger than the admitted one.
  const std::vector<std::size_t>& mine = sliceEntries_.at(id);
  for (int sw = 0; sw < plant_.numSwitches(); ++sw) {
    const std::size_t oldCnt = mine[static_cast<std::size_t>(sw)];
    const std::size_t newCnt = plan.tables[static_cast<std::size_t>(sw)].size();
    const std::size_t others = reserved_[static_cast<std::size_t>(sw)] - 2 * oldCnt;
    if (others + 2 * std::max(oldCnt, newCnt) > capacityOf(sw)) {
      return makeError(strFormat(
          "tenant %u reconfiguration would break switch %d two-version "
          "capacity (%zu others + 2x%zu > %zu)",
          id, sw, others, std::max(oldCnt, newCnt), capacityOf(sw)));
    }
  }
  // Hold the window's worst case until noteReconfigured() settles it.
  std::vector<std::size_t>& held = sliceEntries_[id];
  for (int sw = 0; sw < plant_.numSwitches(); ++sw) {
    held[static_cast<std::size_t>(sw)] =
        std::max(held[static_cast<std::size_t>(sw)],
                 plan.tables[static_cast<std::size_t>(sw)].size());
  }
  recomputeReservations();

  // Scope the transaction: switches where the slice has live entries, will
  // have new entries, or attaches hosts; flip only its host-facing ports.
  std::vector<std::vector<int>> hostPortsBySwitch(
      static_cast<std::size_t>(plant_.numSwitches()));
  for (topo::HostId h = 0; h < next.numHosts(); ++h) {
    const projection::PhysPort pp = plan.projection.hostPortOf(h);
    hostPortsBySwitch[static_cast<std::size_t>(pp.sw)].push_back(pp.port);
  }
  plan.scope.clear();
  plan.flipPorts.clear();
  for (int sw = 0; sw < plant_.numSwitches(); ++sw) {
    auto& ports = hostPortsBySwitch[static_cast<std::size_t>(sw)];
    const bool touched = mine[static_cast<std::size_t>(sw)] > 0 ||
                         !plan.tables[static_cast<std::size_t>(sw)].empty() ||
                         !ports.empty();
    if (!touched) continue;
    std::sort(ports.begin(), ports.end());
    plan.scope.push_back(sw);
    plan.flipPorts.push_back(ports);
  }
  return plan;
}

void TenantManager::noteReconfigured(std::uint16_t id, const topo::Topology* topology,
                                     const routing::RoutingAlgorithm* routing) {
  const auto it = slices_.find(id);
  if (it == slices_.end()) return;
  if (topology != nullptr) it->second.topology = topology;
  if (routing != nullptr) it->second.routing = routing;
  refreshSlice(it->second);
  recomputeReservations();
}

void TenantManager::scopeRecovery(std::uint16_t id,
                                  controller::RecoveryPlan& plan) const {
  const auto it = slices_.find(id);
  if (it == slices_.end()) return;
  const TenantSlice& slice = it->second;
  plan.flipPorts.assign(static_cast<std::size_t>(plant_.numSwitches()), {});
  for (topo::HostId h = 0; h < slice.topology->numHosts(); ++h) {
    const projection::PhysPort pp = slice.deployment.projection.hostPortOf(h);
    plan.flipPorts[static_cast<std::size_t>(pp.sw)].push_back(pp.port);
  }
  for (auto& ports : plan.flipPorts) std::sort(ports.begin(), ports.end());
}

Result<controller::RepairReport> TenantManager::repairSlice(
    std::uint16_t id, const controller::FailureSet& failures,
    const controller::RepairOptions& options) {
  const auto it = slices_.find(id);
  if (it == slices_.end()) {
    return makeError(strFormat("tenant repairSlice: no tenant %u", id));
  }
  TenantSlice& slice = it->second;
  // Fault containment: only failures on this slice's own cables and host
  // ports reach its repair path. A crashed switch is shared hardware —
  // every tenant re-installs its own namespace's entries there, so those
  // pass through (the diff on a switch the slice never touched is empty).
  controller::FailureSet scoped;
  scoped.crashedSwitches = failures.crashedSwitches;
  for (const projection::PhysPort& p : failures.ports) {
    if (tenantOwningPort(p) == id) scoped.ports.push_back(p);
  }
  if (scoped.empty()) return controller::RepairReport{};
  controller::RepairOptions opts = options;
  opts.deploy = slice.deployOptions;
  auto repaired = slice.controller->repair(slice.deployment, *slice.topology,
                                           *slice.routing, scoped, opts);
  if (repaired) {
    refreshSlice(slice);
    recomputeReservations();
    // Repair's per-port re-stamp only covers crashed switches; host ports
    // keep their stamps, but a rebooted switch lost them — re-assert.
    for (topo::HostId h = 0; h < slice.topology->numHosts(); ++h) {
      const projection::PhysPort pp = slice.deployment.projection.hostPortOf(h);
      switches_[static_cast<std::size_t>(pp.sw)]->setPortIngressEpoch(
          pp.port, slice.deployment.epoch);
    }
  }
  return repaired;
}

int TenantManager::totalHostSlots() const { return hostSlots_; }

sim::BuiltNetwork TenantManager::buildNetwork(sim::Simulator& sim,
                                              const sim::NetworkConfig& config,
                                              const sim::CrossbarModel& crossbar,
                                              sim::EpochConsistencyChecker* checker) const {
  sim::BuiltNetwork built;
  built.net = std::make_unique<sim::Network>(sim, config);
  built.ofSwitches = switches_;
  sim::Network& net = *built.net;

  for (int psw = 0; psw < plant_.numSwitches(); ++psw) {
    std::shared_ptr<openflow::Switch> ofs = switches_[static_cast<std::size_t>(psw)];
    sim::Forwarder forwarder = [ofs, checker, psw](const sim::Packet& pkt, int inPort) {
      const openflow::ForwardDecision decision =
          ofs->process(pkt.header(inPort), pkt.wireBytes());
      if (checker != nullptr) {
        checker->onLookup(pkt.id, psw, decision.matched, decision.ruleEpoch);
      }
      sim::ForwardResult result;
      result.drop = decision.drop;
      result.outPort = decision.outPort;
      result.vc = decision.vc >= 0 ? decision.vc : pkt.vc;
      result.epoch = decision.stampEpoch;
      return result;
    };
    // Crossbar arbitration scales with the TOTAL sub-switch load the
    // physical switch carries across every slice (co-tenancy is visible as
    // latency, never as misrouting).
    int subSwitches = 0;
    for (const auto& [id, slice] : slices_) {
      subSwitches += slice.deployment.projection.subSwitchCountOn(psw);
    }
    const int id = net.addSwitch(plant_.switches[static_cast<std::size_t>(psw)].numPorts,
                                 std::move(forwarder), crossbar.extra(subSwitches));
    assert(id == psw);
    (void)id;
  }
  // Global host-id space, holes from evicted slices included: an orphan
  // host has no NIC link and never injects.
  for (int h = 0; h < hostSlots_; ++h) {
    const int id = net.addHost();
    assert(id == h);
    (void)id;
  }

  // Every fixed cable is wired (spares are repair's landing zone); realized
  // links run at their slice's configured logical speed.
  std::unordered_map<int, Gbps> selfSpeed;
  std::unordered_map<int, Gbps> interSpeed;
  for (const auto& [id, slice] : slices_) {
    for (const projection::RealizedLink& rl :
         slice.deployment.projection.realizedLinks()) {
      const topo::Link& logical = slice.topology->link(rl.logicalLink);
      if (rl.interSwitch) {
        interSpeed.emplace(slice.interToShared[static_cast<std::size_t>(rl.physLink)],
                           logical.speed);
      } else {
        selfSpeed.emplace(slice.selfToShared[static_cast<std::size_t>(rl.physLink)],
                          logical.speed);
      }
    }
  }
  for (std::size_t i = 0; i < plant_.selfLinks.size(); ++i) {
    const projection::PhysLink& phys = plant_.selfLinks[i];
    const auto speedIt = selfSpeed.find(static_cast<int>(i));
    const Gbps speed = speedIt != selfSpeed.end()
                           ? speedIt->second
                           : plant_.switches[static_cast<std::size_t>(phys.a.sw)].portSpeed;
    net.connectSwitches(phys.a.sw, phys.a.port, phys.b.sw, phys.b.port, speed,
                        config.selfLinkPropDelay);
  }
  for (std::size_t i = 0; i < plant_.interLinks.size(); ++i) {
    const projection::PhysLink& phys = plant_.interLinks[i];
    const auto speedIt = interSpeed.find(static_cast<int>(i));
    const Gbps speed = speedIt != interSpeed.end()
                           ? speedIt->second
                           : plant_.switches[static_cast<std::size_t>(phys.a.sw)].portSpeed;
    net.connectSwitches(phys.a.sw, phys.a.port, phys.b.sw, phys.b.port, speed,
                        config.interSwitchPropDelay);
  }
  for (const auto& [id, slice] : slices_) {
    for (topo::HostId h = 0; h < slice.topology->numHosts(); ++h) {
      const projection::PhysPort pp = slice.deployment.projection.hostPortOf(h);
      net.connectHost(static_cast<int>(slice.hostBase) + h, pp.sw, pp.port,
                      slice.topology->hostLink(h).speed, config.hostPropDelay);
    }
  }
  net.partitionShards();
  return built;
}

}  // namespace sdt::tenant
