// Multi-tenant testbed-as-a-service (DESIGN.md §13): a TenantManager carves
// per-tenant topology slices out of one shared SDT plant and keeps every
// control-plane operation — deploy, two-phase reconfiguration, crash
// recovery, repair, admission backpressure — scoped to the slice that asked
// for it.
//
// The isolation stack, bottom to top:
//   - Resource carving: each admitted slice owns a disjoint set of the
//     plant's fixed cables and host ports (plus requested spares for
//     self-healing). Two tenants can share a physical *switch* (crossbar +
//     flow table) but never a cable, so the data planes only meet in
//     switch-internal arbitration.
//   - Cookie/epoch namespacing: a slice deploys with DeployOptions::tenant,
//     so every flow entry's cookie is tenant<<48 | epoch<<32 | tag and every
//     bulk epoch operation (flip, drain, GC, restamp) selects only that
//     namespace. Ingress stamping is per *port* (the slice's host ports),
//     never per switch, so a slice's epoch flip cannot move a neighbor's
//     packets onto new rules.
//   - Two-version capacity admission: a slice is admitted only if every
//     shared switch can hold TWO full epochs of every admitted slice's
//     entries simultaneously. That is exactly planUpdate()'s two-version
//     headroom, checked at admission time — a slice that could not survive
//     its own reconfiguration window is rejected up front, not mid-morph.
//   - Fault containment: a physical port failure maps to the single slice
//     whose cable (or host port) it is; repairSlice() re-projects only onto
//     that slice's own spares and diffs only its own entries.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/result.hpp"
#include "controller/controller.hpp"
#include "controller/recovery.hpp"
#include "projection/plant.hpp"
#include "sim/builder.hpp"

namespace sdt::tenant {

/// What a tenant asks for at admission time.
struct TenantSpec {
  std::string name;
  /// Requested logical topology and its routing; both must outlive the
  /// slice (the manager keeps pointers for repair/reconfig recompiles).
  const topo::Topology* topology = nullptr;
  const routing::RoutingAlgorithm* routing = nullptr;
  /// Spare fixed cables to reserve for this slice's self-healing repair():
  /// extra free self-links per physical switch / inter-links per switch
  /// pair beyond what the projection uses. Spares are owned (no other
  /// tenant can take them) but carry no traffic until a repair needs them.
  int spareSelfLinksPerSwitch = 0;
  int spareInterLinksPerPair = 0;
  /// Deploy knobs (deadlock check, ECMP salt, projector). `tenant` and
  /// `hostAddrBase` are overwritten by the manager.
  controller::DeployOptions deploy;
};

/// A live slice: the tenant's private view of the shared plant.
struct TenantSlice {
  std::uint16_t id = 0;
  std::string name;
  /// Global host-id base: this slice's logical host h is sim host
  /// hostBase + h on the shared network, and its flow entries match
  /// dstAddr = hostBase + h — addresses that can never alias a co-tenant.
  std::uint32_t hostBase = 0;
  const topo::Topology* topology = nullptr;
  const routing::RoutingAlgorithm* routing = nullptr;
  /// The carved plant: every shared switch, but only this slice's cables
  /// and host ports. The slice controller plans/repairs against this, so a
  /// re-projection can only ever land on the slice's own spares.
  projection::Plant plant;
  std::unique_ptr<controller::SdtController> controller;
  /// Live deployment. `deployment.switches` is the SHARED switch vector —
  /// the slice's entries live side by side with co-tenants', separated by
  /// cookie namespace.
  controller::Deployment deployment;
  /// Slice-plant link index -> shared-plant link index (projection results
  /// index the slice plant; the network builder needs shared indices).
  std::vector<int> selfToShared;
  std::vector<int> interToShared;
  /// Shared-plant host-port indices this slice owns (parallel to logical
  /// host ids).
  std::vector<int> hostPortToShared;
  /// Physical switches this slice currently touches (entries or host
  /// ports), ascending — becomes UpdatePlan::scope.
  std::vector<int> scope;
  /// Parallel to `scope`: the slice's host-facing ingress ports on each
  /// scoped switch — becomes UpdatePlan::flipPorts (empty inner list =
  /// mid-path switch, nothing to flip there).
  std::vector<std::vector<int>> flipPorts;
  /// (switch, port) egress queues the slice's traffic can occupy — feed
  /// these to AdmissionController::restrictToPorts() so a co-tenant's storm
  /// never throttles this slice's credits.
  std::vector<std::pair<int, int>> watchPorts;
  controller::DeployOptions deployOptions;  ///< with tenant/hostAddrBase set
};

/// Admission verdict detail (status/introspection; errors carry the same
/// text).
struct AdmissionReport {
  std::uint16_t id = 0;
  int usedSelfLinks = 0;
  int usedInterLinks = 0;
  int spareSelfLinks = 0;
  int spareInterLinks = 0;
  int hostPorts = 0;
  int flowEntries = 0;
  /// Worst-case two-version occupancy fraction across switches after this
  /// admission (1.0 = a switch is fully reserved).
  double peakReservedFraction = 0.0;
};

class TenantManager {
 public:
  /// The manager owns the shared plant and one openflow::Switch model per
  /// physical switch; every slice's entries install into these.
  explicit TenantManager(projection::Plant plant);

  [[nodiscard]] const projection::Plant& plant() const { return plant_; }
  [[nodiscard]] const std::vector<std::shared_ptr<openflow::Switch>>& switches() const {
    return switches_;
  }

  /// Admit a tenant: carve a slice, run the two-version capacity check, and
  /// install its flow entries. Fails cleanly (no shared state touched) when
  /// the free cables cannot realize the topology or any switch would exceed
  /// two-version capacity. Returns the tenant id (>= 1; 0 is the legacy
  /// whole-plant namespace and never assigned).
  Result<AdmissionReport> admit(const TenantSpec& spec);

  /// Tear a slice down: GC its entries by cookie namespace, clear its
  /// host-port epoch stamps, return its cables to the free pool.
  StatusOr evict(std::uint16_t id);

  [[nodiscard]] const TenantSlice* slice(std::uint16_t id) const;
  /// Mutable access for driving a ReconfigTransaction / RecoveryRun over the
  /// slice's deployment; call noteReconfigured() after it settles.
  [[nodiscard]] TenantSlice* mutableSlice(std::uint16_t id);
  [[nodiscard]] std::vector<std::uint16_t> tenantIds() const;
  [[nodiscard]] int numTenants() const { return static_cast<int>(slices_.size()); }

  /// Two-version entry reservation currently held against switch `sw`.
  [[nodiscard]] std::size_t reservedEntries(int sw) const;

  /// Which tenant owns physical port `p` (cable end or host port); 0 = no
  /// slice — fault containment routes monitor PortFailure events with this.
  [[nodiscard]] std::uint16_t tenantOwningPort(projection::PhysPort p) const;

  /// Prepare a tenant-scoped live reconfiguration: planUpdate() on the
  /// slice, plus the slice's scope/flipPorts and a reservation re-check
  /// (the new table set may be larger; the window holds old + new). The
  /// returned plan drives a controller::ReconfigTransaction that touches
  /// only this slice's switches and flips only its host ports.
  Result<controller::UpdatePlan> planSliceUpdate(std::uint16_t id,
                                                 const topo::Topology& next,
                                                 const routing::RoutingAlgorithm& routing);

  /// After a committed (or rolled-back) slice transaction: refresh the
  /// slice's intent pointers, scope, and reservation from live table state.
  void noteReconfigured(std::uint16_t id, const topo::Topology* topology,
                        const routing::RoutingAlgorithm* routing);

  /// Scope a crash-recovery plan to a slice: fill RecoveryPlan::flipPorts
  /// with the slice's host ports so converge/audit rounds stamp per-port,
  /// never per-switch (recovery already namespaces restamp/GC by the
  /// tenant encoded in targetEpoch).
  void scopeRecovery(std::uint16_t id, controller::RecoveryPlan& plan) const;

  /// Tenant-scoped self-healing: keep only failures on ports this slice
  /// owns and repair within the slice plant (its own spares). Failures on
  /// other tenants' cables are ignored here — their owners repair them.
  Result<controller::RepairReport> repairSlice(
      std::uint16_t id, const controller::FailureSet& failures,
      const controller::RepairOptions& options = {});

  /// Build ONE shared data plane executing every admitted slice: all fixed
  /// cables wired (spares carry no entries), per-switch forwarding through
  /// the shared openflow::Switch models, crossbar arbitration overhead from
  /// the summed sub-switch load of all slices, hosts at their global ids.
  /// Rebuild after every admit/evict (sim networks are immutable once
  /// partitioned).
  [[nodiscard]] sim::BuiltNetwork buildNetwork(
      sim::Simulator& sim, const sim::NetworkConfig& config = {},
      const sim::CrossbarModel& crossbar = {},
      sim::EpochConsistencyChecker* checker = nullptr) const;

  /// Total sim hosts buildNetwork() creates (max global host id + 1, holes
  /// from evicted slices included — orphan hosts are never connected).
  [[nodiscard]] int totalHostSlots() const;

 private:
  [[nodiscard]] std::size_t capacityOf(int sw) const {
    return plant_.switches[static_cast<std::size_t>(sw)].flowTableCapacity;
  }
  /// Recompute scope/flipPorts/watchPorts and the two-version reservation
  /// for a slice from its live entries and projection.
  void refreshSlice(TenantSlice& slice);
  void recomputeReservations();
  [[nodiscard]] std::uint32_t allocateHostBase(int numHosts) const;

  projection::Plant plant_;
  std::vector<std::shared_ptr<openflow::Switch>> switches_;
  /// Free/owned state per shared-plant cable and host port (owner tenant
  /// id; 0 = free).
  std::vector<std::uint16_t> selfOwner_;
  std::vector<std::uint16_t> interOwner_;
  std::vector<std::uint16_t> hostPortOwner_;
  /// Per-switch sum over slices of 2x(slice entries on the switch).
  std::vector<std::size_t> reserved_;
  /// Per-slice per-switch entry counts backing `reserved_`.
  std::map<std::uint16_t, std::vector<std::size_t>> sliceEntries_;
  std::map<std::uint16_t, TenantSlice> slices_;
  std::uint16_t nextId_ = 1;
  int hostSlots_ = 0;  ///< high-water mark of global host ids
};

}  // namespace sdt::tenant
