#include "obs/collectors.hpp"

namespace sdt::obs {

namespace {

Labels swLabel(int sw) { return {{"sw", std::to_string(sw)}}; }

}  // namespace

void registerNetworkCollector(Registry& registry, const sim::Network& net) {
  registry.addCollector([&registry, &net]() {
    for (int sw = 0; sw < net.numSwitches(); ++sw) {
      std::uint64_t txP = 0, txB = 0, rxP = 0, rxB = 0, drops = 0, pauses = 0,
                    ecn = 0, fault = 0, corrupted = 0;
      for (int p = 0; p < net.switchPortCount(sw); ++p) {
        const sim::PortCounters& c = net.switchPortCounters(sw, p);
        txP += c.txPackets;
        txB += c.txBytes;
        rxP += c.rxPackets;
        rxB += c.rxBytes;
        drops += c.drops;
        pauses += c.pausesSent;
        ecn += c.ecnMarks;
        fault += c.faultDrops;
        corrupted += c.corruptedPackets;
      }
      const Labels l = swLabel(sw);
      registry.counter("sdt_net_tx_packets_total", l, "Packets transmitted per switch")
          .syncTo(txP);
      registry.counter("sdt_net_tx_bytes_total", l, "Bytes transmitted per switch")
          .syncTo(txB);
      registry.counter("sdt_net_rx_packets_total", l, "Packets received per switch")
          .syncTo(rxP);
      registry.counter("sdt_net_rx_bytes_total", l, "Bytes received per switch")
          .syncTo(rxB);
      registry.counter("sdt_net_drops_total", l, "Packets dropped per switch")
          .syncTo(drops);
      registry.counter("sdt_net_pauses_total", l, "PFC PAUSE frames sent per switch")
          .syncTo(pauses);
      registry.counter("sdt_net_ecn_marks_total", l, "ECN-marked packets per switch")
          .syncTo(ecn);
      registry
          .counter("sdt_net_fault_drops_total", l,
                   "Drops caused by injected faults per switch")
          .syncTo(fault);
      registry
          .counter("sdt_net_corrupted_packets_total", l,
                   "Frames damaged by injected impairment per switch")
          .syncTo(corrupted);
    }
    registry.counter("sdt_net_total_drops", {}, "Network-wide packet drops")
        .syncTo(net.totalDrops());
    registry
        .gauge("sdt_net_peak_queue_bytes", {},
               "Maximum egress queue occupancy observed anywhere")
        .set(static_cast<double>(net.peakQueueBytes()));
  });
}

void registerSimulatorCollector(Registry& registry, const sim::Simulator& sim) {
  registry.addCollector([&registry, &sim]() {
    for (int shard = 0; shard < sim.numShards(); ++shard) {
      registry
          .counter("sdt_sim_shard_events_total", {{"shard", std::to_string(shard)}},
                   "Events executed per engine shard")
          .syncTo(sim.shardEvents(shard));
    }
    registry
        .counter("sdt_sim_cross_shard_events_total", {},
                 "Events routed through cross-shard mailboxes")
        .syncTo(sim.crossShardEvents());
    registry
        .counter("sdt_sim_barrier_windows_total", {},
                 "Lookahead windows executed by parallel runs")
        .syncTo(sim.barrierWindows());
    registry
        .gauge("sdt_sim_avg_window_ns", {},
               "Mean lookahead-window width of parallel runs (sim ns)")
        .set(sim.avgWindowNs());
  });
}

void registerControlChannelCollector(Registry& registry,
                                     const sim::ControlChannel& channel) {
  registry.addCollector([&registry, &channel]() {
    const sim::ControlChannelStats& s = channel.stats();
    const auto sync = [&registry](const char* result, std::uint64_t v) {
      registry
          .counter("sdt_ctrl_msgs_total", {{"result", result}},
                   "Control-channel messages by outcome")
          .syncTo(v);
    };
    sync("sent", s.sent);
    sync("delivered", s.delivered);
    sync("dropped", s.dropped);
    sync("disconnected", s.disconnected);
    sync("duplicated", s.duplicated);
    sync("reordered", s.reordered);
    registry
        .counter("sdt_ctrl_delay_ns_total", {},
                 "Sum of scheduled one-way control-message delays (sim ns)")
        .syncTo(s.delayNsTotal);
    registry
        .gauge("sdt_ctrl_delay_max_ns", {},
               "Largest scheduled one-way control-message delay (sim ns)")
        .set(static_cast<double>(s.delayMaxNs));
  });
}

void registerSwitchCollector(
    Registry& registry, std::vector<std::shared_ptr<openflow::Switch>> switches) {
  registry.addCollector([&registry, switches = std::move(switches)]() {
    for (const auto& swPtr : switches) {
      if (!swPtr) continue;
      const openflow::Switch& sw = *swPtr;
      const Labels l = swLabel(sw.id());
      const openflow::FlowTable& table = sw.table();
      registry.gauge("sdt_of_table_entries", l, "Installed flow-table entries")
          .set(static_cast<double>(table.size()));
      registry.gauge("sdt_of_table_capacity", l, "Flow-table capacity (TCAM limit)")
          .set(static_cast<double>(table.capacity()));
      const auto mods = [&registry, &l](const char* op, std::uint64_t v) {
        Labels labels = l;
        labels.emplace_back("op", op);
        registry
            .counter("sdt_of_flow_mods_total", labels,
                     "Flow-table mutations by operation")
            .syncTo(v);
      };
      mods("add", table.addsTotal());
      mods("remove", table.removesTotal());
      mods("restamp", table.restampsTotal());
      registry
          .counter("sdt_of_xid_dup_hits_total", l,
                   "Duplicate flow-mod bundles refused by xid dedup")
          .syncTo(sw.xidDupHits());
      registry.counter("sdt_of_barriers_total", l, "Barrier requests processed")
          .syncTo(sw.barriersSeen());
    }
  });
}

}  // namespace sdt::obs
