#include "obs/metrics.hpp"

#include <algorithm>
#include <stdexcept>

namespace sdt::obs {

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  if (!std::is_sorted(bounds_.begin(), bounds_.end())) {
    throw std::logic_error("Histogram bounds must be ascending");
  }
  buckets_ = std::vector<std::atomic<std::uint64_t>>(bounds_.size() + 1);
}

void Histogram::observe(double v) {
  // First bucket whose upper bound admits v; past-the-end = +Inf bucket.
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const auto idx = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

std::vector<std::uint64_t> Histogram::bucketCounts() const {
  std::vector<std::uint64_t> out(buckets_.size());
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

double Histogram::sum() const { return sum_.load(std::memory_order_relaxed); }

std::vector<double> latencyBucketsNs() {
  return {1e3,  5e3,  1e4,  5e4,  1e5,  5e5,  1e6,
          5e6,  1e7,  5e7,  1e8};  // 1us .. 100ms
}

RingSeries::RingSeries(std::size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {
  ring_.reserve(capacity_);
}

void RingSeries::record(TimeNs at, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() < capacity_) {
    ring_.emplace_back(at, value);
  } else {
    ring_[recorded_ % capacity_] = {at, value};
  }
  ++recorded_;
}

std::vector<std::pair<TimeNs, double>> RingSeries::samples() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<TimeNs, double>> out;
  out.reserve(ring_.size());
  if (recorded_ <= capacity_) {
    out = ring_;
  } else {
    const std::size_t head = recorded_ % capacity_;  // oldest sample
    for (std::size_t i = 0; i < capacity_; ++i) {
      out.push_back(ring_[(head + i) % capacity_]);
    }
  }
  return out;
}

std::uint64_t RingSeries::recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return recorded_;
}

std::uint64_t RingSeries::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return recorded_ > capacity_ ? recorded_ - capacity_ : 0;
}

const char* instrumentKindName(InstrumentKind kind) {
  switch (kind) {
    case InstrumentKind::kCounter: return "counter";
    case InstrumentKind::kGauge: return "gauge";
    case InstrumentKind::kHistogram: return "histogram";
    case InstrumentKind::kSeries: return "series";
  }
  return "?";
}

std::string labelKey(const Labels& labels) {
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  std::string key;
  for (const auto& [k, v] : sorted) {
    if (!key.empty()) key += ',';
    key += k;
    key += '=';
    key += v;
  }
  return key;
}

Family::Cell& Registry::cell(const std::string& name, InstrumentKind kind,
                             const Labels& labels, const std::string& help,
                             std::vector<double> bounds, std::size_t seriesCapacity) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [fit, created] = families_.try_emplace(name);
  Family& family = fit->second;
  if (created) {
    family.kind = kind;
    family.help = help;
    family.bounds = std::move(bounds);
    family.seriesCapacity = seriesCapacity;
  } else if (family.kind != kind) {
    throw std::logic_error("metric family '" + name + "' already registered as " +
                           instrumentKindName(family.kind));
  }
  Labels effective = labels;
  std::string key = labelKey(effective);
  if (family.cells.find(key) == family.cells.end() &&
      family.cells.size() >= cellLimit_) {
    // Family is full: fold this (new) label set into the shared overflow
    // cell so the map stops growing. Existing cells are unaffected.
    ++overflowCells_;
    effective = Labels{{"overflow", "true"}};
    key = labelKey(effective);
  }
  auto [cit, fresh] = family.cells.try_emplace(std::move(key));
  Family::Cell& c = cit->second;
  if (fresh) {
    c.labels = std::move(effective);
    std::sort(c.labels.begin(), c.labels.end());
    switch (kind) {
      case InstrumentKind::kCounter: c.counter = std::make_unique<Counter>(); break;
      case InstrumentKind::kGauge: c.gauge = std::make_unique<Gauge>(); break;
      case InstrumentKind::kHistogram:
        c.histogram = std::make_unique<Histogram>(family.bounds);
        break;
      case InstrumentKind::kSeries:
        c.series = std::make_unique<RingSeries>(family.seriesCapacity);
        break;
    }
  }
  return c;
}

Counter& Registry::counter(const std::string& name, const Labels& labels,
                           const std::string& help) {
  return *cell(name, InstrumentKind::kCounter, labels, help, {}, 0).counter;
}

Gauge& Registry::gauge(const std::string& name, const Labels& labels,
                       const std::string& help) {
  return *cell(name, InstrumentKind::kGauge, labels, help, {}, 0).gauge;
}

Histogram& Registry::histogram(const std::string& name, std::vector<double> bounds,
                               const Labels& labels, const std::string& help) {
  return *cell(name, InstrumentKind::kHistogram, labels, help, std::move(bounds), 0)
              .histogram;
}

RingSeries& Registry::series(const std::string& name, std::size_t capacity,
                             const Labels& labels, const std::string& help) {
  return *cell(name, InstrumentKind::kSeries, labels, help, {}, capacity).series;
}

void Registry::addCollector(std::function<void()> collector) {
  std::lock_guard<std::mutex> lock(mu_);
  collectors_.push_back(std::move(collector));
}

void Registry::collect() const {
  // Copy the hooks out so a collector may itself create instruments
  // (get-or-create re-enters the mutex).
  std::vector<std::function<void()>> hooks;
  {
    std::lock_guard<std::mutex> lock(mu_);
    hooks = collectors_;
  }
  for (const auto& hook : hooks) hook();
}

void Registry::visit(
    const std::function<void(const std::string& name, const Family&)>& fn) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, family] : families_) fn(name, family);
}

std::size_t Registry::familyCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return families_.size();
}

void Registry::setCellLimitPerFamily(std::size_t limit) {
  std::lock_guard<std::mutex> lock(mu_);
  cellLimit_ = limit == 0 ? 1 : limit;
}

std::size_t Registry::cellLimitPerFamily() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cellLimit_;
}

std::uint64_t Registry::overflowCells() const {
  std::lock_guard<std::mutex> lock(mu_);
  return overflowCells_;
}

std::size_t Registry::cellCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const auto& [name, family] : families_) n += family.cells.size();
  return n;
}

std::size_t Registry::approxBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t bytes = 0;
  for (const auto& [name, family] : families_) {
    bytes += sizeof(Family) + name.capacity() + family.help.capacity() +
             family.bounds.capacity() * sizeof(double);
    for (const auto& [key, c] : family.cells) {
      bytes += sizeof(Family::Cell) + key.capacity();
      for (const auto& [k, v] : c.labels) bytes += k.capacity() + v.capacity();
      if (c.counter) bytes += sizeof(Counter);
      if (c.gauge) bytes += sizeof(Gauge);
      if (c.histogram) {
        bytes += sizeof(Histogram) +
                 (c.histogram->bounds().size() + 1) *
                     (sizeof(double) + sizeof(std::atomic<std::uint64_t>));
      }
      if (c.series) {
        bytes += sizeof(RingSeries) +
                 c.series->capacity() * sizeof(std::pair<TimeNs, double>);
      }
    }
  }
  return bytes;
}

}  // namespace sdt::obs
