// Span tracer for controller operations.
//
// A span is a named interval of *simulated* time with an optional parent:
// a deploy, a two-phase reconfiguration, one of its phases
// (prepare/install/barrier/flip/drain/gc), a repair, a recovery round.
// Controller operations are event-driven — a phase starts in one callback
// and ends in another — so spans are begun and ended explicitly by id
// rather than by RAII scope.
//
// Timestamps come from whoever begins/ends the span (the simulator clock or
// the controller's modeled-time accounting), never from a wall clock, so a
// trace is as reproducible as the run that produced it. Span ids are
// indices into an append-only vector: child spans recorded after their
// parents, stable export order for free.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/units.hpp"

namespace sdt::obs {

/// Index into the tracer's span vector. 0 is a valid id; use kNoSpan for
/// "no parent".
using SpanId = std::size_t;
inline constexpr SpanId kNoSpan = static_cast<SpanId>(-1);

struct Span {
  std::string name;
  SpanId parent = kNoSpan;
  TimeNs start = 0;
  TimeNs end = 0;
  bool closed = false;
  /// Free-form annotations ("rules", "attempts", "outcome"...), in the
  /// order they were added.
  std::vector<std::pair<std::string, std::string>> attrs;

  [[nodiscard]] TimeNs duration() const { return closed ? end - start : 0; }
};

class Tracer {
 public:
  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Open a span at simulated time `at`.
  SpanId begin(const std::string& name, TimeNs at, SpanId parent = kNoSpan);
  /// Close a span. Closing an already-closed or out-of-range id is a no-op
  /// (an aborted operation may race its own cleanup path to the close).
  void end(SpanId id, TimeNs at);
  /// Annotate an open or closed span.
  void annotate(SpanId id, const std::string& key, const std::string& value);

  [[nodiscard]] std::size_t size() const;
  /// Snapshot of all spans in creation order.
  [[nodiscard]] std::vector<Span> spans() const;

 private:
  mutable std::mutex mu_;
  std::vector<Span> spans_;
};

}  // namespace sdt::obs
