#include "obs/export.hpp"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <limits>

namespace sdt::obs {

namespace {

json::Value labelsToJson(const Labels& labels) {
  json::Object obj;
  for (const auto& [k, v] : labels) obj[k] = v;
  return obj;
}

/// Stable number rendering for Prometheus lines (mirrors common/json's
/// integer-when-exact rule so both exporters agree on what a count looks
/// like).
std::string renderNumber(double v) {
  char buf[64];
  if (std::floor(v) == v && std::abs(v) < 9.0e15) {
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof buf, "%.17g", v);
  }
  return buf;
}

std::string renderLabels(const Labels& labels, const std::string& extraKey = "",
                         const std::string& extraValue = "") {
  if (labels.empty() && extraKey.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += k + "=\"" + v + "\"";
  }
  if (!extraKey.empty()) {
    if (!first) out += ',';
    out += extraKey + "=\"" + extraValue + "\"";
  }
  out += '}';
  return out;
}

}  // namespace

json::Value metricsToJson(const Registry& registry) {
  registry.collect();
  json::Object root;
  registry.visit([&root](const std::string& name, const Family& family) {
    json::Object fam;
    fam["kind"] = instrumentKindName(family.kind);
    if (!family.help.empty()) fam["help"] = family.help;
    json::Array values;
    for (const auto& [key, cellRef] : family.cells) {
      (void)key;
      const Family::Cell& c = cellRef;
      json::Object v;
      v["labels"] = labelsToJson(c.labels);
      switch (family.kind) {
        case InstrumentKind::kCounter:
          v["value"] = static_cast<std::int64_t>(c.counter->value());
          break;
        case InstrumentKind::kGauge:
          v["value"] = c.gauge->value();
          break;
        case InstrumentKind::kHistogram: {
          v["count"] = static_cast<std::int64_t>(c.histogram->count());
          v["sum"] = c.histogram->sum();
          json::Array buckets;
          const auto counts = c.histogram->bucketCounts();
          const auto& bounds = c.histogram->bounds();
          for (std::size_t i = 0; i < counts.size(); ++i) {
            json::Object b;
            if (i < bounds.size()) {
              b["le"] = bounds[i];
            } else {
              b["le"] = "+Inf";
            }
            b["count"] = static_cast<std::int64_t>(counts[i]);
            buckets.push_back(std::move(b));
          }
          v["buckets"] = std::move(buckets);
          break;
        }
        case InstrumentKind::kSeries: {
          v["capacity"] = static_cast<std::int64_t>(c.series->capacity());
          v["recorded"] = static_cast<std::int64_t>(c.series->recorded());
          v["dropped"] = static_cast<std::int64_t>(c.series->dropped());
          json::Array samples;
          for (const auto& [t, val] : c.series->samples()) {
            samples.push_back(json::Array{json::Value(t), json::Value(val)});
          }
          v["samples"] = std::move(samples);
          break;
        }
      }
      values.push_back(std::move(v));
    }
    fam["values"] = std::move(values);
    root[name] = std::move(fam);
  });
  return root;
}

std::string metricsToPrometheus(const Registry& registry) {
  registry.collect();
  std::string out;
  registry.visit([&out](const std::string& name, const Family& family) {
    if (!family.help.empty()) out += "# HELP " + name + " " + family.help + "\n";
    const char* type = family.kind == InstrumentKind::kCounter ? "counter"
                       : family.kind == InstrumentKind::kHistogram ? "histogram"
                                                                   : "gauge";
    out += "# TYPE " + name + " " + std::string(type) + "\n";
    for (const auto& [key, c] : family.cells) {
      (void)key;
      switch (family.kind) {
        case InstrumentKind::kCounter:
          out += name + renderLabels(c.labels) + " " +
                 renderNumber(static_cast<double>(c.counter->value())) + "\n";
          break;
        case InstrumentKind::kGauge:
          out += name + renderLabels(c.labels) + " " + renderNumber(c.gauge->value()) +
                 "\n";
          break;
        case InstrumentKind::kHistogram: {
          const auto counts = c.histogram->bucketCounts();
          const auto& bounds = c.histogram->bounds();
          std::uint64_t cumulative = 0;
          for (std::size_t i = 0; i < counts.size(); ++i) {
            cumulative += counts[i];
            const std::string le =
                i < bounds.size() ? renderNumber(bounds[i]) : "+Inf";
            out += name + "_bucket" + renderLabels(c.labels, "le", le) + " " +
                   renderNumber(static_cast<double>(cumulative)) + "\n";
          }
          out += name + "_sum" + renderLabels(c.labels) + " " +
                 renderNumber(c.histogram->sum()) + "\n";
          out += name + "_count" + renderLabels(c.labels) + " " +
                 renderNumber(static_cast<double>(c.histogram->count())) + "\n";
          break;
        }
        case InstrumentKind::kSeries: {
          const auto samples = c.series->samples();
          const double last = samples.empty() ? 0.0 : samples.back().second;
          out += name + renderLabels(c.labels) + " " + renderNumber(last) + "\n";
          out += name + "_dropped_total" + renderLabels(c.labels) + " " +
                 renderNumber(static_cast<double>(c.series->dropped())) + "\n";
          break;
        }
      }
    }
  });
  return out;
}

json::Value tracerToJson(const Tracer& tracer) {
  json::Array out;
  const auto spans = tracer.spans();
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const Span& s = spans[i];
    json::Object obj;
    obj["id"] = static_cast<std::int64_t>(i);
    obj["name"] = s.name;
    obj["parent"] =
        s.parent == kNoSpan ? json::Value(-1) : json::Value(static_cast<std::int64_t>(s.parent));
    obj["start"] = s.start;
    obj["end"] = s.end;
    obj["duration"] = s.duration();
    obj["closed"] = s.closed;
    json::Array attrs;
    for (const auto& [k, v] : s.attrs) {
      attrs.push_back(json::Array{json::Value(k), json::Value(v)});
    }
    obj["attrs"] = std::move(attrs);
    out.push_back(std::move(obj));
  }
  return out;
}

}  // namespace sdt::obs
