// Metrics registry: the measurement substrate of the observability layer.
//
// The paper's Network Monitor (§V-3) is the controller's management-plane
// module; this registry is where everything it (and every other subsystem)
// observes lands: monotonic counters, gauges, fixed-bucket histograms, and
// bounded time series, grouped into labeled families. Design constraints,
// in order:
//
//   1. Deterministic export. A metrics dump is part of the experiment
//      record (BENCH_*.json), so two runs of the same seed — serial or
//      through a multi-threaded SweepRunner — must export byte-identical
//      text. Families and instruments are therefore kept in sorted maps
//      (export order is (family name, label set), never creation order) and
//      every timestamp is *simulated* time: wall clocks never enter the
//      registry.
//   2. No dependencies. Only the standard library and common/units.hpp, so
//      any layer (openflow, sim, controller, bench) can feed a registry
//      without creating a cycle.
//   3. Thread-safe. SweepRunner points normally own a private registry each
//      (that is what makes exports reproducible), but nothing breaks if two
//      threads share one: instrument values are atomics, structural
//      mutation (family/instrument creation, collector registration) takes
//      a mutex, and returned instrument references stay valid for the
//      registry's lifetime (instruments are never destroyed or moved).
//
// Hot paths stay hot: the intended pattern for per-packet quantities is a
// *collector* — a pull hook registered once that copies existing cheap
// counters (sim::PortCounters, ControlChannelStats, FlowTable totals) into
// the registry only when a snapshot is exported. Push-style inc()/observe()
// is for control-plane-rate events (flow-mods, retries, samples).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/units.hpp"

namespace sdt::obs {

/// Label set of one instrument, e.g. {{"sw", "3"}, {"op", "add"}}. Order of
/// construction does not matter; the registry canonicalizes by key.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotonic counter (events since the registry was created).
class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  /// Collector-style sync from an external cumulative total: the counter
  /// adopts `total` if it is larger (keeps the reading monotonic even if the
  /// source resets, e.g. a switch reboot wiping its stats).
  void syncTo(std::uint64_t total) {
    std::uint64_t cur = value_.load(std::memory_order_relaxed);
    while (total > cur &&
           !value_.compare_exchange_weak(cur, total, std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Point-in-time measurement (queue depth, table occupancy).
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  void add(double d) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + d, std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: bucket upper bounds are set at creation (the
/// +Inf bucket is implicit) and never change, so two runs that observe the
/// same values export the same counts. Observations are `double`; latency
/// observations are simulated nanoseconds by convention.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double v);
  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket counts (size = bounds+1; last = +Inf overflow), non-cumulative.
  [[nodiscard]] std::vector<std::uint64_t> bucketCounts() const;
  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const;

 private:
  std::vector<double> bounds_;  ///< ascending upper bounds
  std::vector<std::atomic<std::uint64_t>> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Default latency buckets: 1us .. 100ms in decade/half-decade steps, in
/// nanoseconds — covers everything from a flow-mod to a full recovery.
std::vector<double> latencyBucketsNs();

/// Bounded time series: a ring buffer of (simulated time, value) samples.
/// The NetworkMonitor feeds one per watched port with queue-depth samples;
/// when full, the oldest sample is overwritten and `dropped()` counts it,
/// so export size is bounded no matter how long the run.
class RingSeries {
 public:
  explicit RingSeries(std::size_t capacity);

  void record(TimeNs at, double value);
  /// Samples oldest -> newest (at most `capacity` of them).
  [[nodiscard]] std::vector<std::pair<TimeNs, double>> samples() const;
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::uint64_t recorded() const;
  [[nodiscard]] std::uint64_t dropped() const;

 private:
  mutable std::mutex mu_;
  std::size_t capacity_;
  std::vector<std::pair<TimeNs, double>> ring_;
  std::uint64_t recorded_ = 0;
};

enum class InstrumentKind : std::uint8_t { kCounter, kGauge, kHistogram, kSeries };

const char* instrumentKindName(InstrumentKind kind);

/// One family of same-named instruments distinguished by labels. Exporters
/// walk families via Registry::visit(); users never construct these.
struct Family {
  InstrumentKind kind = InstrumentKind::kCounter;
  std::string help;
  std::vector<double> bounds;      ///< histogram families only
  std::size_t seriesCapacity = 0;  ///< series families only

  struct Cell {
    Labels labels;  ///< canonical (key-sorted)
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
    std::unique_ptr<RingSeries> series;
  };
  /// Keyed by the canonical label string ("k1=v1,k2=v2"), so iteration
  /// order is a pure function of the label sets, not of creation order.
  std::map<std::string, Cell> cells;
};

/// Canonical label string used as the intra-family sort key.
std::string labelKey(const Labels& labels);

class Registry {
 public:
  /// Default per-family cell cap (see setCellLimitPerFamily): generous
  /// enough for every shipped collector (ports x counters on the largest
  /// topologies), small enough that a runaway label set cannot OOM a soak.
  static constexpr std::size_t kDefaultCellLimit = 4096;

  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Get-or-create. The returned reference lives as long as the registry.
  /// Re-requesting an existing (name, labels) pair returns the same
  /// instrument; requesting an existing name with a different kind throws
  /// std::logic_error (families are homogeneous).
  Counter& counter(const std::string& name, const Labels& labels = {},
                   const std::string& help = "");
  Gauge& gauge(const std::string& name, const Labels& labels = {},
               const std::string& help = "");
  Histogram& histogram(const std::string& name, std::vector<double> bounds,
                       const Labels& labels = {}, const std::string& help = "");
  RingSeries& series(const std::string& name, std::size_t capacity,
                     const Labels& labels = {}, const std::string& help = "");

  /// Register a pull hook that refreshes registry values from an external
  /// stats surface (port counters, channel stats, flow-table totals). All
  /// hooks run, in registration order, at the start of every collect().
  void addCollector(std::function<void()> collector);

  /// Run the collectors. Exporters call this before reading.
  void collect() const;

  /// Visit every family in name order (cells inside are label-key ordered).
  /// Runs under the registry mutex: do not create instruments from `fn`.
  void visit(const std::function<void(const std::string& name, const Family&)>& fn) const;

  [[nodiscard]] std::size_t familyCount() const;

  // -- Memory bounding (long-soak safety) -----------------------------------
  /// Cap the number of label cells one family may hold. Once a family is
  /// full, get-or-create calls with *new* label sets all resolve to a single
  /// shared overflow cell (labels {{"overflow","true"}}) instead of growing
  /// the map — a million distinct flow ids cannot OOM the registry; existing
  /// cells keep resolving normally. The overflow cell rides on top of the
  /// cap, and overflowCells() counts how many distinct label sets were
  /// folded into it. Applies per family; takes effect for future creations.
  void setCellLimitPerFamily(std::size_t limit);
  [[nodiscard]] std::size_t cellLimitPerFamily() const;
  /// Distinct new label sets that were routed to an overflow cell.
  [[nodiscard]] std::uint64_t overflowCells() const;
  /// Total label cells across all families.
  [[nodiscard]] std::size_t cellCount() const;
  /// Rough resident footprint of the registry's metric storage (names,
  /// labels, buckets, ring capacity) — the quantity the soak footprint test
  /// asserts stays bounded. Estimation, not accounting: containers' exact
  /// overheads are implementation-defined.
  [[nodiscard]] std::size_t approxBytes() const;

 private:
  Family::Cell& cell(const std::string& name, InstrumentKind kind,
                     const Labels& labels, const std::string& help,
                     std::vector<double> bounds, std::size_t seriesCapacity);

  mutable std::mutex mu_;
  std::map<std::string, Family> families_;
  std::vector<std::function<void()>> collectors_;
  std::size_t cellLimit_ = kDefaultCellLimit;
  std::uint64_t overflowCells_ = 0;
};

}  // namespace sdt::obs
