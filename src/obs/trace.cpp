#include "obs/trace.hpp"

namespace sdt::obs {

SpanId Tracer::begin(const std::string& name, TimeNs at, SpanId parent) {
  std::lock_guard<std::mutex> lock(mu_);
  Span span;
  span.name = name;
  span.parent = parent < spans_.size() ? parent : kNoSpan;
  span.start = at;
  span.end = at;
  spans_.push_back(std::move(span));
  return spans_.size() - 1;
}

void Tracer::end(SpanId id, TimeNs at) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id >= spans_.size() || spans_[id].closed) return;
  spans_[id].end = at;
  spans_[id].closed = true;
}

void Tracer::annotate(SpanId id, const std::string& key, const std::string& value) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id >= spans_.size()) return;
  spans_[id].attrs.emplace_back(key, value);
}

std::size_t Tracer::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_.size();
}

std::vector<Span> Tracer::spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

}  // namespace sdt::obs
