// Telemetry exporters: one machine-first (JSON, merged into BENCH_*.json
// reports and consumed by sdtctl --json), one ecosystem-first (Prometheus
// text exposition, scrape-able if the testbed ever runs behind a real
// HTTP endpoint). Both are pure functions of registry/tracer state and
// emit families sorted by (name, label set), so equal runs produce equal
// bytes — the property the determinism suite pins.
#pragma once

#include <string>

#include "common/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace sdt::obs {

/// Run the registry's collectors, then render every family:
///   { "<family>": { "kind": ..., "help": ..., "values": [
///       {"labels": {...}, ...kind-specific fields...}, ... ] }, ... }
/// Counters export "value"; gauges "value"; histograms "count"/"sum"/
/// "buckets" (per-bucket, with upper bound; final bound is "+Inf");
/// series "capacity"/"recorded"/"dropped"/"samples" ([t, v] pairs in
/// simulated-time order).
json::Value metricsToJson(const Registry& registry);

/// Prometheus text exposition format (# HELP / # TYPE + sample lines).
/// Histograms follow the cumulative-bucket convention; ring series export
/// their latest value as a gauge (Prometheus has no native series type)
/// plus a `_dropped_total` counter.
std::string metricsToPrometheus(const Registry& registry);

/// All spans in creation order:
///   [ {"id": i, "name": ..., "parent": id|-1, "start": ns, "end": ns,
///      "duration": ns, "closed": bool, "attrs": [[k, v], ...]}, ... ]
/// Attrs stay an ordered pair list (not an object): annotation order is
/// meaningful and keys may repeat (one "attempt" entry per retry).
json::Value tracerToJson(const Tracer& tracer);

}  // namespace sdt::obs
