// Pull collectors: bridge existing stats surfaces into an obs::Registry.
//
// The data-plane hot paths (per-packet counters in sim::Network, flow-mod
// totals in openflow::FlowTable, delivery accounting in ControlChannel)
// already maintain cheap plain counters; registering a collector copies
// them into labeled registry families only when a snapshot is exported, so
// instrumentation costs the fast paths nothing. Counters sync via
// Counter::syncTo (monotonic even across a switch reboot that wipes the
// source); gauges overwrite.
//
// Lifetime: each collector captures a reference to its source. Register
// collectors on a registry that does not outlive the network/channel/
// switches it watches — in practice both live side by side in a testbed
// Instance or a bench/sweep point.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "openflow/of_switch.hpp"
#include "sim/control_channel.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"

namespace sdt::obs {

/// Per-switch data-plane families (label "sw"): sdt_net_{tx,rx}_packets_total,
/// sdt_net_{tx,rx}_bytes_total, sdt_net_drops_total, sdt_net_pauses_total,
/// sdt_net_ecn_marks_total, sdt_net_fault_drops_total, plus the global
/// gauges sdt_net_peak_queue_bytes and counter sdt_net_total_drops.
void registerNetworkCollector(Registry& registry, const sim::Network& net);

/// Sharded-engine families: per-shard event counters
/// sdt_sim_shard_events_total{shard=...} and cross-shard mailbox traffic
/// sdt_sim_cross_shard_events_total, plus the parallel-run gauges
/// sdt_sim_barrier_windows_total and sdt_sim_avg_window_ns. All values are
/// deterministic at a fixed shard count (events and mail counts do not
/// depend on worker threading), so exported snapshots stay byte-identical
/// between serial and parallel runs of the same configuration.
void registerSimulatorCollector(Registry& registry, const sim::Simulator& sim);

/// Control-channel families: sdt_ctrl_msgs_total{result=sent|delivered|
/// dropped|disconnected|duplicated|reordered}, sdt_ctrl_delay_ns_total,
/// and gauge sdt_ctrl_delay_max_ns.
void registerControlChannelCollector(Registry& registry,
                                     const sim::ControlChannel& channel);

/// OpenFlow switch families (label "sw"): gauge sdt_of_table_entries /
/// sdt_of_table_capacity, counters sdt_of_flow_mods_total{op=add|remove|
/// restamp}, sdt_of_xid_dup_hits_total, sdt_of_barriers_total.
/// `switches` is copied (shared ownership), matching how
/// BuiltNetwork::ofSwitches shares the models with the forwarders.
void registerSwitchCollector(
    Registry& registry,
    std::vector<std::shared_ptr<openflow::Switch>> switches);

}  // namespace sdt::obs
