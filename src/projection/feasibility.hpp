// Scalability / cost / reconfiguration-time models for the four TP methods
// (paper Table II).
//
// For the DC-topology rows, Table II reports the highest link speed at which
// a topology can be projected on a given hardware budget, exploiting QSFP28
// breakout (100G -> 2x50G -> 4x25G). The capacity arithmetic per method:
//   SP / SP-OS / SDT : logical ports per switch = ports * breakout
//   TurboNet         : half the ports are loopback pairs  -> ports/2 * breakout
//                      and recirculation halves bandwidth -> speed/2
// A topology fits when (a) the total fabric port demand fits the budget and
// (b) a balanced partition keeps every physical switch within its port count
// (checked with the real partitioner, not just the aggregate).
//
// The paper's own Table II cannot be reproduced cell-for-cell from its stated
// port counts (see EXPERIMENTS.md); these models keep every *ordering* the
// paper reports: SDT >= SP = SP-OS >> TurboNet in scalability, SDT cheapest,
// SP slowest to reconfigure.
#pragma once

#include <optional>
#include <string>

#include "common/result.hpp"
#include "projection/plant.hpp"
#include "topo/topology.hpp"

namespace sdt::projection {

enum class TpMethod { kSP, kSPOS, kTurboNet, kSDT };

const char* methodName(TpMethod method);

/// Hardware available to one Table II column.
struct HardwareBudget {
  PhysicalSwitchSpec spec;
  int numSwitches = 3;  ///< the paper's cluster uses 3 switches
};

struct SpeedClass {
  bool feasible = false;
  Gbps linkSpeed{0.0};
  int breakout = 1;
  std::string reason;  ///< why infeasible, when !feasible
};

/// Highest projectable link speed for `topo` under `budget`, or infeasible.
/// Speeds below `speedFloor` count as infeasible (Table II's "x" cells stop
/// at 25G; pass Gbps{0} to disable the floor, e.g. for WAN counting).
SpeedClass maxProjectableSpeed(TpMethod method, const topo::Topology& topo,
                               const HardwareBudget& budget,
                               Gbps speedFloor = Gbps{25.0});

/// How many of the 261 synthetic Topology Zoo WANs the method can project
/// (any link speed). Reproduces Table II's bottom row.
int countProjectableWans(TpMethod method, const HardwareBudget& budget);

struct CostEstimate {
  double hardwareUsd = 0.0;
  std::string requirement;  ///< Table II "hardware requirement" row
};

/// Hardware cost of the budget under the method (SP-OS adds a right-sized
/// MEMS optical switch at ~$312/port, from the >$100k 320-port price point).
CostEstimate hardwareCost(TpMethod method, const HardwareBudget& budget);

/// Reconfiguration time. `workItems` is cable moves for SP/SP-OS and flow
/// entries for SDT (TurboNet's recompile dominates and ignores it).
TimeNs reconfigTime(TpMethod method, int workItems);

/// Human-readable typical range for the Table II row.
std::string reconfigRangeLabel(TpMethod method);

}  // namespace sdt::projection
