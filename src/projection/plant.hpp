// Physical plant model: the switches a lab actually buys and the fixed
// cabling installed once at deployment time (paper §IV).
//
// SDT's key idea is that the *cabling never changes*: ports are paired into
// self-links (a short fiber between two adjacent ports of the same switch,
// footnote 2), a reserved set of inter-switch links connects switch pairs,
// and some ports are reserved for end hosts. Every topology
// (re)configuration afterwards is pure flow-table work.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "common/units.hpp"
#include "partition/partitioner.hpp"
#include "topo/topology.hpp"

namespace sdt::projection {

enum class SwitchKind {
  kOpenFlow,  ///< commodity OpenFlow switch (SDT, SP, SP-OS)
  kP4,        ///< Tofino-class programmable switch (TurboNet)
};

/// One purchasable switch model. Costs follow the paper's Table II
/// extrapolations ("current market price").
struct PhysicalSwitchSpec {
  std::string model = "generic-64x100G";
  int numPorts = 64;
  Gbps portSpeed{100.0};
  /// 100G ports split into 2x50G or 4x25G (QSFP28 breakout).
  int maxBreakout = 4;
  std::size_t flowTableCapacity = 8192;
  double costUsd = 5'000.0;
  SwitchKind kind = SwitchKind::kOpenFlow;
};

/// Catalog entries used by the Table II comparison.
PhysicalSwitchSpec openflow64x100G();
PhysicalSwitchSpec openflow128x100G();
PhysicalSwitchSpec p4Switch64x100G();
PhysicalSwitchSpec p4Switch128x100G();
/// The paper's actual cluster switch: H3C S6861-54QF (64x10G + 6x40G).
PhysicalSwitchSpec h3cS6861();

/// MEMS optical circuit switch used by the SP-OS baseline. Price scales
/// super-linearly with port count (a 320-port unit is >$100k, §III-C).
struct OpticalSwitchSpec {
  std::string model = "mems-320";
  int numPorts = 320;
  double costUsd = 100'000.0;
  /// Mirror-rotation reconfiguration latency (~100 ms, §II-A1).
  TimeNs reconfigLatency = msToNs(100);
};

OpticalSwitchSpec mems320();

/// A physical port reference: (switch index in the plant, port index).
struct PhysPort {
  int sw = -1;
  int port = -1;

  [[nodiscard]] bool valid() const { return sw >= 0 && port >= 0; }
  auto operator<=>(const PhysPort&) const = default;
};

/// A fixed cable: self-link when both ends are on the same switch,
/// inter-switch link otherwise.
struct PhysLink {
  PhysPort a;
  PhysPort b;

  [[nodiscard]] bool isSelfLink() const { return a.sw == b.sw; }
};

/// The deployed hardware: switches plus the one-time cabling.
///
/// `flexPorts` implements the paper's §VII-A flexibility enhancement: ports
/// cabled once into a MEMS optical circuit switch. The projector can pair
/// any two of them through an OCS circuit, turning the pair into *either* a
/// self-link (both ends on one switch) or an inter-switch link on demand —
/// the escape hatch when the fixed self/inter reservation does not fit a
/// new user topology. Circuits cost optical ports and add the OCS
/// reconfiguration latency, so fixed cabling is always preferred.
struct Plant {
  std::vector<PhysicalSwitchSpec> switches;
  std::vector<PhysLink> selfLinks;   ///< both ends on one switch
  std::vector<PhysLink> interLinks;  ///< across two switches
  std::vector<PhysPort> hostPorts;   ///< ports cabled to end hosts
  std::vector<PhysPort> flexPorts;   ///< ports cabled to the optical switch (§VII-A)
  OpticalSwitchSpec optical;         ///< the OCS behind flexPorts (if any)

  [[nodiscard]] int numSwitches() const { return static_cast<int>(switches.size()); }

  /// Self-link indices on physical switch `sw`.
  [[nodiscard]] std::vector<int> selfLinksOf(int sw) const;
  /// Inter-link indices between switches `a` and `b` (a != b).
  [[nodiscard]] std::vector<int> interLinksBetween(int a, int b) const;
  /// Host-port indices on switch `sw`.
  [[nodiscard]] std::vector<int> hostPortsOf(int sw) const;
  /// Flex-port indices on switch `sw`.
  [[nodiscard]] std::vector<int> flexPortsOf(int sw) const;

  /// Total monetary cost of the plant's switches.
  [[nodiscard]] double totalCostUsd() const;

  /// Structural checks: port ranges, no double-use of a port.
  [[nodiscard]] Status<Error> validate() const;
};

/// Configuration for the canonical plant builder.
struct PlantConfig {
  int numSwitches = 3;
  PhysicalSwitchSpec spec = openflow64x100G();
  /// Ports per switch cabled to hosts (the paper reserves 32/3 ≈ 11).
  int hostPortsPerSwitch = 11;
  /// Reserved inter-switch links between every switch pair (§IV-B: chosen
  /// as the max over all topologies to be evaluated).
  int interLinksPerPair = 8;
};

/// Build a plant with the paper's canonical wiring: on each switch, the
/// first ports host the inter-switch cables (round-robin over pairs), the
/// next `hostPortsPerSwitch` go to hosts, and every remaining adjacent
/// port pair (2k, 2k+1) becomes a self-link.
Result<Plant> buildPlant(const PlantConfig& config);

/// Plan a plant for a *set* of topologies (paper §IV-B: "we generally divide
/// the topologies in advance ... the reserved inter-switch links usually
/// come from the maximum inter-switch links among all topologies").
/// Partitions every topology over `numSwitches`, takes the per-switch
/// self-link / host-port and per-pair inter-link maxima plus `slack`, and
/// builds the corresponding plant. Fails when the switch model simply has
/// too few ports.
struct PlanOptions {
  int numSwitches = 3;
  PhysicalSwitchSpec spec = openflow64x100G();
  int slackSelfLinks = 2;    ///< spare self-links per switch
  int slackInterLinks = 2;   ///< spare inter-switch links per pair
  int slackHostPorts = 1;    ///< spare host ports per switch
  std::uint64_t partitionSeed = 1;
  /// How each topology is split over the switches: the in-memory multilevel
  /// scheme by default, or a streaming heuristic (partition/streaming.hpp)
  /// for warehouse-scale topologies.
  partition::PartitionMethod partitionMethod = partition::PartitionMethod::kMultilevel;
};

Result<Plant> planPlant(const std::vector<const topo::Topology*>& topologies,
                        const PlanOptions& options);

/// §VII-A flexibility enhancement: re-cable `pairsPerSwitch` of each
/// switch's self-links into the optical circuit switch, making their ports
/// available as on-demand self-links *or* inter-switch links. Fails when a
/// switch has too few self-links left or the OCS runs out of ports.
Status<Error> addOpticalFlex(Plant& plant, int pairsPerSwitch,
                             OpticalSwitchSpec optical = mems320());

}  // namespace sdt::projection
