// Switch Projection (SP) and SP-OS baselines (paper §III-B, §III-C).
//
// SP divides each physical switch into sub-switches first (blocks of ports
// matching each logical switch's radix) and then *cables* the corresponding
// ports by hand. Reconfiguring means re-plugging every fabric cable, which
// is what SDT eliminates. SP-OS routes every fabric port through a MEMS
// optical circuit switch so the re-plugging becomes a circuit update.
//
// Both produce the same Projection object as SDT; the difference is the
// deliverable next to it: a CablePlan (SP: for human hands; SP-OS: for the
// optical switch) and very different cost/reconfiguration models.
#pragma once

#include "common/result.hpp"
#include "partition/partitioner.hpp"
#include "projection/projection.hpp"

namespace sdt::projection {

/// The cables a technician (SP) or the optical switch (SP-OS) must realize.
struct CablePlan {
  std::vector<PhysLink> cables;

  /// How many cables differ from `previous` (moves needed on reconfig).
  [[nodiscard]] int movesFrom(const CablePlan& previous) const;
};

struct SpResult {
  Projection projection;
  Plant plant;      ///< plant with exactly the cables this topology needs
  CablePlan cables; ///< fabric cables (self + inter), the manual work
};

struct SpOptions {
  partition::PartitionOptions partition;
  int hostPortsPerSwitch = 11;
};

class SwitchProjector {
 public:
  /// Project `topo` onto `numSwitches` switches of `spec`, generating the
  /// cable plan. Fails when port counts cannot fit the topology.
  static Result<SpResult> project(const topo::Topology& topo,
                                  const PhysicalSwitchSpec& spec, int numSwitches,
                                  const SpOptions& options = {});

  /// SP-OS capacity check: every fabric port must reach the optical switch,
  /// so the OCS needs one port per projected fabric port.
  static Status<Error> checkOpticalCapacity(const SpResult& result,
                                            const OpticalSwitchSpec& optical);
};

}  // namespace sdt::projection
