// Link Projection (LP) — the SDT algorithm (paper §IV).
//
// Given a logical topology and a plant whose cabling is fixed, LP:
//  1. partitions the logical switch graph into one sub-topology per physical
//     switch (§IV-C, METIS-style objective: small cut, balanced port load),
//  2. realizes every intra-part logical link on a physical *self-link* of
//     that switch and every cross-part link on a reserved *inter-switch
//     link* of the right switch pair (§IV-B, Eq. 1-2),
//  3. pins every logical host to a host-cabled port of the physical switch
//     carrying its logical switch, and
//  4. derives the sub-switch port groups that the flow tables will isolate.
//
// Nothing here moves a cable: a failed projection returns an error telling
// the user which link class is short and by how much (the controller's
// "checking function", §V-1).
#pragma once

#include "common/result.hpp"
#include "partition/partitioner.hpp"
#include "projection/projection.hpp"

namespace sdt::projection {

struct LinkProjectorOptions {
  partition::PartitionOptions partition;
  /// Try several partition seeds before giving up on a switch count.
  int partitionAttempts = 4;
};

class LinkProjector {
 public:
  /// Project `topo` onto `plant`. Tries the smallest number of physical
  /// switches first (fewer inter-switch links), growing until it fits.
  static Result<Projection> project(const topo::Topology& topo, const Plant& plant,
                                    const LinkProjectorOptions& options = {});

  /// Project with a caller-chosen part assignment (logical switch -> plant
  /// switch). Exposed for tests and for the SP family, which shares the
  /// link-realization machinery.
  static Result<Projection> projectWithAssignment(const topo::Topology& topo,
                                                  const Plant& plant,
                                                  const std::vector<int>& assignment);
};

}  // namespace sdt::projection
