#include "projection/projection.hpp"

#include <algorithm>
#include <set>

#include "common/strings.hpp"

namespace sdt::projection {

void Projection::mapPort(topo::SwitchPort logical, PhysPort phys) {
  auto& ports = portMap_[logical.sw];
  if (static_cast<int>(ports.size()) <= logical.port) {
    ports.resize(static_cast<std::size_t>(logical.port) + 1);
  }
  // Remapping (repair moving a link to a spare port): drop the stale reverse
  // entry or logicalAt() would keep answering for the abandoned port.
  if (ports[logical.port].valid()) reverse_.erase(ports[logical.port]);
  ports[logical.port] = phys;
  reverse_[phys] = logical;
}

void Projection::rerealizeLink(int realizedIdx, int newPhysLink) {
  realized_[realizedIdx].physLink = newPhysLink;
}

PhysPort Projection::physOf(topo::SwitchPort logical) const {
  const auto& ports = portMap_[logical.sw];
  if (logical.port < 0 || logical.port >= static_cast<int>(ports.size())) return {};
  return ports[logical.port];
}

std::optional<topo::SwitchPort> Projection::logicalAt(PhysPort phys) const {
  const auto it = reverse_.find(phys);
  if (it == reverse_.end()) return std::nullopt;
  return it->second;
}

std::vector<SubSwitch> Projection::subSwitches() const {
  std::vector<SubSwitch> out;
  out.reserve(portMap_.size());
  for (int sw = 0; sw < numLogicalSwitches(); ++sw) {
    SubSwitch sub;
    sub.logicalSwitch = sw;
    sub.physSwitch = physSwitchOf_[sw];
    for (const PhysPort& p : portMap_[sw]) {
      if (p.valid()) sub.physPorts.push_back(p.port);
    }
    out.push_back(std::move(sub));
  }
  return out;
}

int Projection::subSwitchCountOn(int physSw) const {
  return static_cast<int>(
      std::count(physSwitchOf_.begin(), physSwitchOf_.end(), physSw));
}

int Projection::interSwitchLinkCount() const {
  return static_cast<int>(std::count_if(realized_.begin(), realized_.end(),
                                        [](const RealizedLink& rl) { return rl.interSwitch; }));
}

Status<Error> Projection::validate(const topo::Topology& topo, const Plant& plant) const {
  if (topo.numSwitches() != numLogicalSwitches() || topo.numHosts() != numHosts()) {
    return makeError("projection size does not match topology");
  }
  // Every realized link joins the correct physical endpoints.
  std::set<int> usedSelf;
  std::set<int> usedInter;
  std::set<int> usedCircuit;
  if (static_cast<int>(realized_.size()) != topo.numLinks()) {
    return makeError(strFormat("%zu links realized, topology has %d", realized_.size(),
                               topo.numLinks()));
  }
  for (const RealizedLink& rl : realized_) {
    const topo::Link& logical = topo.link(rl.logicalLink);
    const PhysLink& phys =
        rl.optical ? circuits_[rl.physLink]
                   : (rl.interSwitch ? plant.interLinks[rl.physLink]
                                     : plant.selfLinks[rl.physLink]);
    auto& pool = rl.optical ? usedCircuit : (rl.interSwitch ? usedInter : usedSelf);
    if (!pool.insert(rl.physLink).second) {
      return makeError(strFormat("physical link %d used by two logical links", rl.physLink));
    }
    const PhysPort pa = physOf(logical.a);
    const PhysPort pb = physOf(logical.b);
    const bool straight = pa == phys.a && pb == phys.b;
    const bool flipped = pa == phys.b && pb == phys.a;
    if (!straight && !flipped) {
      return makeError(strFormat("logical link %d not realized by its physical link",
                                 rl.logicalLink));
    }
    if (rl.optical) {
      // Circuit endpoints must be plant flex ports (cabled into the OCS).
      for (const PhysPort end : {phys.a, phys.b}) {
        const bool isFlex =
            std::find(plant.flexPorts.begin(), plant.flexPorts.end(), end) !=
            plant.flexPorts.end();
        if (!isFlex) {
          return makeError(strFormat("optical circuit for link %d uses a non-flex port",
                                     rl.logicalLink));
        }
      }
    }
  }
  // No physical port double-booked between fabric map and host map.
  std::set<PhysPort> used;
  for (const auto& [phys, logical] : reverse_) {
    (void)logical;
    if (!used.insert(phys).second) {
      return makeError("physical port mapped twice");
    }
  }
  for (int h = 0; h < numHosts(); ++h) {
    if (!hostPort_[h].valid()) return makeError(strFormat("host %d unmapped", h));
    if (!used.insert(hostPort_[h]).second) {
      return makeError(strFormat("host %d shares a physical port", h));
    }
  }
  // Hosts sit on the same physical switch as their logical switch.
  for (int h = 0; h < numHosts(); ++h) {
    const topo::SwitchId lsw = topo.hostSwitch(h);
    if (hostPort_[h].sw != physSwitchOf_[lsw]) {
      return makeError(strFormat("host %d mapped to switch %d but its logical switch "
                                 "lives on %d", h, hostPort_[h].sw, physSwitchOf_[lsw]));
    }
  }
  return {};
}

}  // namespace sdt::projection
