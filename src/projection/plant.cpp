#include "projection/plant.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "common/strings.hpp"
#include "partition/partitioner.hpp"
#include "topo/topology.hpp"

namespace sdt::projection {

PhysicalSwitchSpec openflow64x100G() {
  PhysicalSwitchSpec s;
  s.model = "openflow-64x100G";
  s.numPorts = 64;
  s.portSpeed = Gbps{100.0};
  s.flowTableCapacity = 65536;
  s.costUsd = 5'000.0;
  s.kind = SwitchKind::kOpenFlow;
  return s;
}

PhysicalSwitchSpec openflow128x100G() {
  PhysicalSwitchSpec s = openflow64x100G();
  s.model = "openflow-128x100G";
  s.numPorts = 128;
  s.costUsd = 10'000.0;
  return s;
}

PhysicalSwitchSpec p4Switch64x100G() {
  PhysicalSwitchSpec s = openflow64x100G();
  s.model = "p4-64x100G";
  s.costUsd = 15'000.0;
  s.kind = SwitchKind::kP4;
  return s;
}

PhysicalSwitchSpec p4Switch128x100G() {
  PhysicalSwitchSpec s = p4Switch64x100G();
  s.model = "p4-128x100G";
  s.numPorts = 128;
  s.costUsd = 30'000.0;
  return s;
}

PhysicalSwitchSpec h3cS6861() {
  PhysicalSwitchSpec s;
  s.model = "h3c-s6861-54qf";
  // 64x10G SFP+ plus 6x40G QSFP+, each splittable into 4x10G: model the
  // whole box as 88 usable 10G ports.
  s.numPorts = 88;
  s.portSpeed = Gbps{10.0};
  s.maxBreakout = 1;  // SFP+ ports do not break out further
  s.flowTableCapacity = 4096;
  s.costUsd = 4'000.0;
  s.kind = SwitchKind::kOpenFlow;
  return s;
}

OpticalSwitchSpec mems320() { return OpticalSwitchSpec{}; }

std::vector<int> Plant::selfLinksOf(int sw) const {
  std::vector<int> out;
  for (int i = 0; i < static_cast<int>(selfLinks.size()); ++i) {
    if (selfLinks[i].a.sw == sw) out.push_back(i);
  }
  return out;
}

std::vector<int> Plant::interLinksBetween(int a, int b) const {
  std::vector<int> out;
  for (int i = 0; i < static_cast<int>(interLinks.size()); ++i) {
    const PhysLink& l = interLinks[i];
    if ((l.a.sw == a && l.b.sw == b) || (l.a.sw == b && l.b.sw == a)) out.push_back(i);
  }
  return out;
}

std::vector<int> Plant::hostPortsOf(int sw) const {
  std::vector<int> out;
  for (int i = 0; i < static_cast<int>(hostPorts.size()); ++i) {
    if (hostPorts[i].sw == sw) out.push_back(i);
  }
  return out;
}

std::vector<int> Plant::flexPortsOf(int sw) const {
  std::vector<int> out;
  for (int i = 0; i < static_cast<int>(flexPorts.size()); ++i) {
    if (flexPorts[i].sw == sw) out.push_back(i);
  }
  return out;
}

double Plant::totalCostUsd() const {
  double sum = 0.0;
  for (const PhysicalSwitchSpec& s : switches) sum += s.costUsd;
  return sum;
}

Status<Error> Plant::validate() const {
  std::set<PhysPort> used;
  const auto checkPort = [&](PhysPort p) -> Status<Error> {
    if (p.sw < 0 || p.sw >= numSwitches()) {
      return makeError(strFormat("port references unknown switch %d", p.sw));
    }
    if (p.port < 0 || p.port >= switches[p.sw].numPorts) {
      return makeError(strFormat("switch %d port %d out of range", p.sw, p.port));
    }
    if (!used.insert(p).second) {
      return makeError(strFormat("switch %d port %d cabled twice", p.sw, p.port));
    }
    return {};
  };
  for (const PhysLink& l : selfLinks) {
    if (!l.isSelfLink()) return makeError("self-link spans two switches");
    if (auto s = checkPort(l.a); !s) return s;
    if (auto s = checkPort(l.b); !s) return s;
  }
  for (const PhysLink& l : interLinks) {
    if (l.isSelfLink()) return makeError("inter-switch link has both ends on one switch");
    if (auto s = checkPort(l.a); !s) return s;
    if (auto s = checkPort(l.b); !s) return s;
  }
  for (const PhysPort& p : hostPorts) {
    if (auto s = checkPort(p); !s) return s;
  }
  for (const PhysPort& p : flexPorts) {
    if (auto s = checkPort(p); !s) return s;
  }
  if (static_cast<int>(flexPorts.size()) > optical.numPorts) {
    return makeError(strFormat("%zu flex ports exceed the %d-port optical switch",
                               flexPorts.size(), optical.numPorts));
  }
  return {};
}

Result<Plant> buildPlant(const PlantConfig& config) {
  if (config.numSwitches < 1) return makeError("plant needs at least one switch");
  if (config.hostPortsPerSwitch < 0 || config.interLinksPerPair < 0) {
    return makeError("negative port reservation");
  }
  Plant plant;
  plant.switches.assign(static_cast<std::size_t>(config.numSwitches), config.spec);

  std::vector<int> nextPort(static_cast<std::size_t>(config.numSwitches), 0);
  const int perSwitch = config.spec.numPorts;

  // Inter-switch links: `interLinksPerPair` cables between every pair.
  for (int a = 0; a < config.numSwitches; ++a) {
    for (int b = a + 1; b < config.numSwitches; ++b) {
      for (int k = 0; k < config.interLinksPerPair; ++k) {
        if (nextPort[a] >= perSwitch || nextPort[b] >= perSwitch) {
          return makeError(strFormat(
              "switch ports exhausted while reserving inter-switch links "
              "(pair %d-%d, link %d)", a, b, k));
        }
        plant.interLinks.push_back(
            PhysLink{PhysPort{a, nextPort[a]++}, PhysPort{b, nextPort[b]++}});
      }
    }
  }
  // Host ports.
  for (int sw = 0; sw < config.numSwitches; ++sw) {
    for (int h = 0; h < config.hostPortsPerSwitch; ++h) {
      if (nextPort[sw] >= perSwitch) {
        return makeError(strFormat("switch %d ports exhausted while reserving host ports", sw));
      }
      plant.hostPorts.push_back(PhysPort{sw, nextPort[sw]++});
    }
  }
  // Remaining ports: adjacent pairs become self-links (paper footnote 2).
  for (int sw = 0; sw < config.numSwitches; ++sw) {
    while (nextPort[sw] + 1 < perSwitch) {
      const int p0 = nextPort[sw]++;
      const int p1 = nextPort[sw]++;
      plant.selfLinks.push_back(PhysLink{PhysPort{sw, p0}, PhysPort{sw, p1}});
    }
  }
  if (auto s = plant.validate(); !s) return s.error();
  return plant;
}

Status<Error> addOpticalFlex(Plant& plant, int pairsPerSwitch, OpticalSwitchSpec optical) {
  if (pairsPerSwitch < 0) return makeError("negative flex reservation");
  const int portsNeeded =
      2 * pairsPerSwitch * plant.numSwitches() + static_cast<int>(plant.flexPorts.size());
  if (portsNeeded > optical.numPorts) {
    return makeError(strFormat("optical switch '%s' has %d ports; %d needed",
                               optical.model.c_str(), optical.numPorts, portsNeeded));
  }
  plant.optical = optical;
  for (int sw = 0; sw < plant.numSwitches(); ++sw) {
    for (int k = 0; k < pairsPerSwitch; ++k) {
      // Convert the switch's last self-link into two OCS-attached ports.
      const auto pool = plant.selfLinksOf(sw);
      if (pool.empty()) {
        return makeError(strFormat("switch %d has no self-link left to convert", sw));
      }
      const PhysLink link = plant.selfLinks[pool.back()];
      plant.selfLinks.erase(plant.selfLinks.begin() + pool.back());
      plant.flexPorts.push_back(link.a);
      plant.flexPorts.push_back(link.b);
    }
  }
  return plant.validate();
}

Result<Plant> planPlant(const std::vector<const topo::Topology*>& topologies,
                        const PlanOptions& options) {
  if (topologies.empty()) return makeError("planPlant needs at least one topology");
  if (options.numSwitches < 1) return makeError("plant needs at least one switch");

  int maxSelf = 0;
  int maxHosts = 0;
  std::map<std::pair<int, int>, int> interNeeded;  // per concrete switch pair
  for (const topo::Topology* t : topologies) {
    const int parts = std::min(options.numSwitches, std::max(1, t->numSwitches()));
    std::vector<int> assignment(static_cast<std::size_t>(t->numSwitches()), 0);
    if (parts > 1) {
      partition::PartitionOptions popt;
      popt.parts = parts;
      popt.seed = options.partitionSeed;
      popt.method = options.partitionMethod;
      auto part = partition::partitionGraph(t->switchGraph(), popt);
      if (!part) {
        return makeError(strFormat("planPlant: cannot partition '%s': %s",
                                   t->name().c_str(), part.error().message.c_str()));
      }
      assignment = std::move(part.value().assignment);
    }
    std::vector<int> selfPer(static_cast<std::size_t>(parts), 0);
    std::map<std::pair<int, int>, int> interPer;
    for (const topo::Link& link : t->links()) {
      const int pa = assignment[link.a.sw];
      const int pb = assignment[link.b.sw];
      if (pa == pb) {
        ++selfPer[pa];
      } else {
        ++interPer[std::minmax(pa, pb)];
      }
    }
    std::vector<int> hostsPer(static_cast<std::size_t>(parts), 0);
    for (topo::HostId h = 0; h < t->numHosts(); ++h) {
      ++hostsPer[assignment[t->hostSwitch(h)]];
    }
    for (const int s : selfPer) maxSelf = std::max(maxSelf, s);
    for (const auto& [pair, count] : interPer) {
      int& need = interNeeded[pair];
      need = std::max(need, count);
    }
    for (const int h : hostsPer) maxHosts = std::max(maxHosts, h);
  }

  // Wire the plant with *exactly* the per-pair inter-switch reservations the
  // topology set demands (uniform all-pairs reservation would waste ports on
  // pairs no partition ever cuts).
  Plant plant;
  plant.switches.assign(static_cast<std::size_t>(options.numSwitches), options.spec);
  std::vector<int> nextPort(static_cast<std::size_t>(options.numSwitches), 0);
  const int perSwitch = options.spec.numPorts;
  const auto allocPort = [&](int sw) -> std::optional<PhysPort> {
    if (nextPort[sw] >= perSwitch) return std::nullopt;
    return PhysPort{sw, nextPort[sw]++};
  };
  for (auto& [pair, need] : interNeeded) {
    if (options.numSwitches > 1) need += options.slackInterLinks;
    for (int k = 0; k < need; ++k) {
      const auto a = allocPort(pair.first);
      const auto b = allocPort(pair.second);
      if (!a || !b) {
        return makeError(strFormat(
            "planPlant: ports exhausted reserving inter-switch links %d-%d on '%s'",
            pair.first, pair.second, options.spec.model.c_str()));
      }
      plant.interLinks.push_back(PhysLink{*a, *b});
    }
  }
  const int hostPorts = maxHosts + options.slackHostPorts;
  for (int sw = 0; sw < options.numSwitches; ++sw) {
    for (int h = 0; h < hostPorts; ++h) {
      const auto p = allocPort(sw);
      if (!p) {
        return makeError(strFormat("planPlant: switch %d out of ports for hosts", sw));
      }
      plant.hostPorts.push_back(*p);
    }
  }
  int minSelf = perSwitch;  // self-links available on the tightest switch
  for (int sw = 0; sw < options.numSwitches; ++sw) {
    int count = 0;
    while (nextPort[sw] + 1 < perSwitch) {
      const auto a = allocPort(sw);
      const auto b = allocPort(sw);
      plant.selfLinks.push_back(PhysLink{*a, *b});
      ++count;
    }
    minSelf = std::min(minSelf, count);
  }
  if (minSelf < maxSelf + options.slackSelfLinks) {
    return makeError(strFormat(
        "planPlant: '%s' x%d leaves only %d self-links per switch but the "
        "topology set needs %d (+%d slack); use bigger or more switches",
        options.spec.model.c_str(), options.numSwitches, minSelf, maxSelf,
        options.slackSelfLinks));
  }
  if (auto s = plant.validate(); !s) return s.error();
  return plant;
}

}  // namespace sdt::projection
