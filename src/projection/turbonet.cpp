#include "projection/turbonet.hpp"

#include "common/strings.hpp"
#include "projection/link_projector.hpp"

namespace sdt::projection {

Result<TurboNetResult> TurboNetProjector::project(const topo::Topology& topo,
                                                  const PhysicalSwitchSpec& spec,
                                                  int numSwitches,
                                                  const TurboNetOptions& options) {
  if (spec.kind != SwitchKind::kP4) {
    return makeError("TurboNet requires P4 switches");
  }
  // Build the loopback-constrained plant: inter-switch cables and host ports
  // come from the external half; the remaining ports form loopback pairs.
  PlantConfig config;
  config.numSwitches = numSwitches;
  config.spec = spec;
  config.hostPortsPerSwitch = options.hostPortsPerSwitch;
  config.interLinksPerPair = numSwitches > 1 ? options.interLinksPerPair : 0;
  auto plant = buildPlant(config);
  if (!plant) return plant.error();

  // Loopback reservation: only half of the self-link pairs are usable as
  // emulated links (the twin of each pair carries the recirculated copy).
  Plant constrained = std::move(plant).value();
  const std::size_t usable = constrained.selfLinks.size() / 2;
  constrained.selfLinks.resize(usable);

  LinkProjectorOptions lpOptions;
  lpOptions.partition = options.partition;
  auto proj = LinkProjector::project(topo, constrained, lpOptions);
  if (!proj) {
    return makeError(strFormat("TurboNet cannot emulate '%s': %s", topo.name().c_str(),
                               proj.error().message.c_str()));
  }
  TurboNetResult result{std::move(proj).value(), std::move(constrained),
                        spec.portSpeed / 2.0};
  return result;
}

}  // namespace sdt::projection
