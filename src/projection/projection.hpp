// Projection result: the concrete assignment of a logical topology onto a
// physical plant, shared by every TP method (SDT, SP, SP-OS, TurboNet).
//
// A Projection answers three questions:
//   1. which physical port realizes each logical (switch, port)?      (map)
//   2. which physical ports form each logical switch's sub-switch?    (groups)
//   3. which physical port does each logical host plug into?          (hosts)
// plus bookkeeping for how each logical link was realized (self-link vs
// inter-switch link), which the flow-table generator and the evaluation
// harness (crossbar-load model) consume.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "projection/plant.hpp"
#include "topo/topology.hpp"

namespace sdt::projection {

/// How one logical link was realized on the plant.
struct RealizedLink {
  int logicalLink = -1;  ///< index into Topology::links()
  bool interSwitch = false;
  /// §VII-A: realized through an on-demand optical circuit instead of fixed
  /// cabling; `physLink` then indexes Projection::opticalCircuits().
  bool optical = false;
  int physLink = -1;  ///< index into Plant::selfLinks / interLinks / circuits
};

/// The sub-switch for one logical switch: a set of ports on one physical
/// switch whose forwarding domain the flow tables will restrict (§IV-A).
struct SubSwitch {
  topo::SwitchId logicalSwitch = -1;
  int physSwitch = -1;
  std::vector<int> physPorts;  ///< fabric ports; parallel to logical port ids
};

class Projection {
 public:
  Projection() = default;
  Projection(std::string topologyName, int numLogicalSwitches, int numHosts)
      : topologyName_(std::move(topologyName)),
        portMap_(static_cast<std::size_t>(numLogicalSwitches)),
        physSwitchOf_(static_cast<std::size_t>(numLogicalSwitches), -1),
        hostPort_(static_cast<std::size_t>(numHosts)) {}

  [[nodiscard]] const std::string& topologyName() const { return topologyName_; }

  /// Record that logical (sw, port) lives on physical `phys`.
  void mapPort(topo::SwitchPort logical, PhysPort phys);
  void setPhysSwitchOf(topo::SwitchId sw, int physSwitch) { physSwitchOf_[sw] = physSwitch; }
  void mapHost(topo::HostId host, PhysPort phys) { hostPort_[host] = phys; }
  void addRealizedLink(RealizedLink rl) { realized_.push_back(rl); }
  /// Repair: move realized link `realizedIdx` onto a different physical link
  /// of the same kind (remap the endpoint ports via mapPort separately).
  void rerealizeLink(int realizedIdx, int newPhysLink);
  /// Register an optical circuit (pair of flex ports); returns its index.
  int addOpticalCircuit(PhysLink circuit) {
    circuits_.push_back(circuit);
    return static_cast<int>(circuits_.size()) - 1;
  }

  /// Physical port realizing logical (sw, port); invalid PhysPort if unmapped.
  [[nodiscard]] PhysPort physOf(topo::SwitchPort logical) const;
  /// Logical (sw, port) at a physical port, if any.
  [[nodiscard]] std::optional<topo::SwitchPort> logicalAt(PhysPort phys) const;
  /// Physical switch hosting logical switch `sw`.
  [[nodiscard]] int physSwitchOf(topo::SwitchId sw) const { return physSwitchOf_[sw]; }
  /// Physical port cabled to logical host `h`.
  [[nodiscard]] PhysPort hostPortOf(topo::HostId h) const { return hostPort_[h]; }

  [[nodiscard]] int numLogicalSwitches() const { return static_cast<int>(portMap_.size()); }
  [[nodiscard]] int numHosts() const { return static_cast<int>(hostPort_.size()); }
  [[nodiscard]] const std::vector<RealizedLink>& realizedLinks() const { return realized_; }
  /// On-demand optical circuits this projection established (§VII-A).
  [[nodiscard]] const std::vector<PhysLink>& opticalCircuits() const { return circuits_; }

  /// Sub-switch groups, derived from the port map.
  [[nodiscard]] std::vector<SubSwitch> subSwitches() const;

  /// Number of logical switches mapped onto physical switch `physSw`
  /// (the crossbar-sharing degree; drives the sim's overhead model).
  [[nodiscard]] int subSwitchCountOn(int physSw) const;

  /// Count of inter-switch realized links (the paper's E_a).
  [[nodiscard]] int interSwitchLinkCount() const;

  /// Consistency check against the topology and plant this projection was
  /// built from: every logical fabric port and host mapped, no physical
  /// port claimed twice, realized links join the right endpoints.
  [[nodiscard]] Status<Error> validate(const topo::Topology& topo, const Plant& plant) const;

 private:
  std::string topologyName_;
  /// portMap_[sw][port] -> PhysPort (resized on demand).
  std::vector<std::vector<PhysPort>> portMap_;
  std::vector<int> physSwitchOf_;
  std::vector<PhysPort> hostPort_;
  std::vector<RealizedLink> realized_;
  std::vector<PhysLink> circuits_;
  std::map<PhysPort, topo::SwitchPort> reverse_;
};

}  // namespace sdt::projection
