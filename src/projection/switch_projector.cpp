#include "projection/switch_projector.hpp"

#include <algorithm>
#include <set>

#include "common/strings.hpp"
#include "projection/link_projector.hpp"

namespace sdt::projection {

int CablePlan::movesFrom(const CablePlan& previous) const {
  // Order-insensitive diff on unordered port pairs.
  const auto canon = [](const PhysLink& l) {
    return l.a < l.b ? std::pair{l.a, l.b} : std::pair{l.b, l.a};
  };
  std::set<std::pair<PhysPort, PhysPort>> old;
  for (const PhysLink& l : previous.cables) old.insert(canon(l));
  int moves = 0;
  for (const PhysLink& l : cables) {
    if (old.find(canon(l)) == old.end()) ++moves;
  }
  return moves;
}

Result<SpResult> SwitchProjector::project(const topo::Topology& topo,
                                          const PhysicalSwitchSpec& spec, int numSwitches,
                                          const SpOptions& options) {
  if (numSwitches < 1) return makeError("SP needs at least one switch");

  // Choose the sub-switch placement: same partitioning problem as SDT.
  std::vector<int> assignment;
  if (numSwitches == 1 || topo.numSwitches() <= 1) {
    assignment.assign(static_cast<std::size_t>(topo.numSwitches()), 0);
  } else {
    partition::PartitionOptions popt = options.partition;
    popt.parts = std::min(numSwitches, topo.numSwitches());
    auto part = partition::partitionGraph(topo.switchGraph(), popt);
    if (!part) return part.error();
    assignment = std::move(part.value().assignment);
  }

  // SP places cables freely, so build a plant containing exactly the links
  // the assignment demands, then reuse the shared realization machinery.
  Plant plant;
  plant.switches.assign(static_cast<std::size_t>(numSwitches), spec);
  std::vector<int> nextPort(static_cast<std::size_t>(numSwitches), 0);
  const auto allocPort = [&](int sw) -> Result<PhysPort> {
    if (nextPort[sw] >= spec.numPorts) {
      return makeError(strFormat(
          "SP: physical switch %d exhausted its %d ports projecting '%s'",
          sw, spec.numPorts, topo.name().c_str()));
    }
    return PhysPort{sw, nextPort[sw]++};
  };

  for (int li = 0; li < topo.numLinks(); ++li) {
    const topo::Link& link = topo.link(li);
    const int pa = assignment[link.a.sw];
    const int pb = assignment[link.b.sw];
    auto ea = allocPort(pa);
    if (!ea) return ea.error();
    auto eb = allocPort(pb);
    if (!eb) return eb.error();
    const PhysLink cable{ea.value(), eb.value()};
    if (pa == pb) {
      plant.selfLinks.push_back(cable);
    } else {
      plant.interLinks.push_back(cable);
    }
  }
  for (topo::HostId h = 0; h < topo.numHosts(); ++h) {
    auto p = allocPort(assignment[topo.hostSwitch(h)]);
    if (!p) return p.error();
    plant.hostPorts.push_back(p.value());
  }
  if (auto s = plant.validate(); !s) return s.error();

  auto proj = LinkProjector::projectWithAssignment(topo, plant, assignment);
  if (!proj) return proj.error();

  SpResult result{std::move(proj).value(), std::move(plant), CablePlan{}};
  result.cables.cables = result.plant.selfLinks;
  result.cables.cables.insert(result.cables.cables.end(), result.plant.interLinks.begin(),
                              result.plant.interLinks.end());
  return result;
}

Status<Error> SwitchProjector::checkOpticalCapacity(const SpResult& result,
                                                    const OpticalSwitchSpec& optical) {
  // Every fabric cable occupies two OCS ports (one per fiber end).
  const int needed = 2 * static_cast<int>(result.cables.cables.size());
  if (needed > optical.numPorts) {
    return makeError(strFormat(
        "SP-OS: topology needs %d optical-switch ports but %s has only %d",
        needed, optical.model.c_str(), optical.numPorts));
  }
  return {};
}

}  // namespace sdt::projection
