#include "projection/feasibility.hpp"

#include <algorithm>

#include "common/strings.hpp"
#include "partition/partitioner.hpp"
#include "topo/zoo.hpp"

namespace sdt::projection {

const char* methodName(TpMethod method) {
  switch (method) {
    case TpMethod::kSP: return "SP";
    case TpMethod::kSPOS: return "SP-OS";
    case TpMethod::kTurboNet: return "TurboNet";
    case TpMethod::kSDT: return "SDT";
  }
  return "?";
}

namespace {

/// Logical fabric ports available per physical switch at a given breakout.
int portsPerSwitch(TpMethod method, const PhysicalSwitchSpec& spec, int breakout) {
  const int base = spec.numPorts * breakout;
  return method == TpMethod::kTurboNet ? base / 2 : base;
}

Gbps speedAt(TpMethod method, const PhysicalSwitchSpec& spec, int breakout) {
  Gbps speed = spec.portSpeed / static_cast<double>(breakout);
  if (method == TpMethod::kTurboNet) speed = speed / 2.0;
  return speed;
}

/// Does the topology fit `numSwitches` switches of `perSwitch` logical ports?
///
/// Aggregate arithmetic, matching the paper's Table II accounting: every
/// logical link consumes exactly two fabric ports (a self-link uses two on
/// one switch, an inter-switch link one on each of two switches), so the
/// budget check is 2*links <= switches*ports. Per-switch balance and
/// inter-link reservations are enforced where they physically bind — in
/// LinkProjector/planPlant at deployment time.
bool fits(const topo::Topology& topo, int numSwitches, int perSwitch) {
  if (numSwitches > 1 && topo.numSwitches() == 1) return false;  // cannot split one switch
  return topo.totalFabricPorts() <= numSwitches * perSwitch;
}

}  // namespace

SpeedClass maxProjectableSpeed(TpMethod method, const topo::Topology& topo,
                               const HardwareBudget& budget, Gbps speedFloor) {
  SpeedClass best;
  best.reason = strFormat("needs %d fabric ports; budget exhausted at every breakout",
                          topo.totalFabricPorts());
  for (int breakout = 1; breakout <= budget.spec.maxBreakout; breakout *= 2) {
    const Gbps speed = speedAt(method, budget.spec, breakout);
    if (speedFloor.value > 0 && speed.value < speedFloor.value) break;  // deeper = slower
    if (fits(topo, budget.numSwitches, portsPerSwitch(method, budget.spec, breakout))) {
      best.feasible = true;
      best.linkSpeed = speed;
      best.breakout = breakout;
      best.reason.clear();
      return best;  // shallowest breakout = fastest links
    }
  }
  return best;
}

int countProjectableWans(TpMethod method, const HardwareBudget& budget) {
  int count = 0;
  for (int i = 0; i < topo::zooSize(); ++i) {
    const topo::Topology wan = topo::makeZooTopology(i);
    if (maxProjectableSpeed(method, wan, budget, Gbps{0.0}).feasible) ++count;
  }
  return count;
}

CostEstimate hardwareCost(TpMethod method, const HardwareBudget& budget) {
  CostEstimate est;
  est.hardwareUsd = budget.spec.costUsd * budget.numSwitches;
  switch (method) {
    case TpMethod::kSP:
      est.requirement = "OpenFlow switch";
      break;
    case TpMethod::kSPOS: {
      est.requirement = "OpenFlow switch + optical switch";
      // One OCS port per fabric switch port, at the MEMS $/port rate
      // (a 320-port unit is >$100k, §III-C).
      const OpticalSwitchSpec reference = mems320();
      const double perPort = reference.costUsd / reference.numPorts;
      est.hardwareUsd += perPort * budget.spec.numPorts * budget.numSwitches;
      break;
    }
    case TpMethod::kTurboNet:
      est.requirement = "P4 switch";
      break;
    case TpMethod::kSDT:
      est.requirement = "OpenFlow/P4 switch";
      break;
  }
  return est;
}

TimeNs reconfigTime(TpMethod method, int workItems) {
  switch (method) {
    case TpMethod::kSP:
      // Manual re-cabling: ~45 s per cable move including verification.
      return secToNs(45.0) * std::max(1, workItems);
    case TpMethod::kSPOS:
      // One batched MEMS circuit update regardless of cable count, plus a
      // small per-circuit programming cost.
      return mems320().reconfigLatency + usToNs(200.0) * std::max(0, workItems);
    case TpMethod::kTurboNet:
      // P4 recompile + binary reload dominates.
      return secToNs(30.0);
    case TpMethod::kSDT:
      // Barrier + batched flow-mod installation (~20 us/entry over the
      // control channel keeps the 100 ms - 1 s envelope of Table II for
      // table sizes up to tens of thousands of entries).
      return msToNs(80.0) + usToNs(20.0) * std::max(0, workItems);
  }
  return 0;
}

std::string reconfigRangeLabel(TpMethod method) {
  switch (method) {
    case TpMethod::kSP: return "more than 1 hour";
    case TpMethod::kSPOS: return "100ms~1s";
    case TpMethod::kTurboNet: return "10s~";
    case TpMethod::kSDT: return "100ms~1s";
  }
  return "?";
}

}  // namespace sdt::projection
