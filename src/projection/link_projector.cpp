#include "projection/link_projector.hpp"

#include <algorithm>
#include <numeric>
#include <vector>

#include "common/log.hpp"
#include "common/strings.hpp"

namespace sdt::projection {

namespace {

/// Per-switch pools of still-unused plant resources during assignment.
struct ResourcePools {
  std::vector<std::vector<int>> selfLinks;   // per switch: plant self-link indices
  std::vector<std::vector<std::vector<int>>> interLinks;  // [a][b]: indices
  std::vector<std::vector<int>> hostPorts;   // per switch: plant host-port indices
  std::vector<std::vector<int>> flexPorts;   // per switch: OCS-attached ports (§VII-A)

  explicit ResourcePools(const Plant& plant) {
    const int n = plant.numSwitches();
    selfLinks.resize(static_cast<std::size_t>(n));
    hostPorts.resize(static_cast<std::size_t>(n));
    flexPorts.resize(static_cast<std::size_t>(n));
    interLinks.assign(static_cast<std::size_t>(n),
                      std::vector<std::vector<int>>(static_cast<std::size_t>(n)));
    for (int i = 0; i < static_cast<int>(plant.selfLinks.size()); ++i) {
      selfLinks[plant.selfLinks[i].a.sw].push_back(i);
    }
    for (int i = 0; i < static_cast<int>(plant.interLinks.size()); ++i) {
      const PhysLink& l = plant.interLinks[i];
      interLinks[l.a.sw][l.b.sw].push_back(i);
      interLinks[l.b.sw][l.a.sw].push_back(i);
    }
    for (int i = 0; i < static_cast<int>(plant.hostPorts.size()); ++i) {
      hostPorts[plant.hostPorts[i].sw].push_back(i);
    }
    for (int i = 0; i < static_cast<int>(plant.flexPorts.size()); ++i) {
      flexPorts[plant.flexPorts[i].sw].push_back(i);
    }
  }

  /// Dial an optical circuit between two flex ports (same switch -> an
  /// on-demand self-link; different switches -> an inter-switch link).
  std::optional<PhysLink> takeCircuit(const Plant& plant, int swA, int swB) {
    if (flexPorts[swA].empty()) return std::nullopt;
    if (swA == swB && flexPorts[swA].size() < 2) return std::nullopt;
    if (swA != swB && flexPorts[swB].empty()) return std::nullopt;
    const int ia = flexPorts[swA].back();
    flexPorts[swA].pop_back();
    const int ib = flexPorts[swB].back();
    flexPorts[swB].pop_back();
    return PhysLink{plant.flexPorts[ia], plant.flexPorts[ib]};
  }

  std::optional<int> takeSelfLink(int sw) {
    if (selfLinks[sw].empty()) return std::nullopt;
    const int idx = selfLinks[sw].back();
    selfLinks[sw].pop_back();
    return idx;
  }

  std::optional<int> takeInterLink(int a, int b) {
    auto& pool = interLinks[a][b];
    if (pool.empty()) return std::nullopt;
    const int idx = pool.back();
    pool.pop_back();
    // Remove from the mirrored pool too.
    auto& mirror = interLinks[b][a];
    mirror.erase(std::find(mirror.begin(), mirror.end(), idx));
    return idx;
  }

  std::optional<int> takeHostPort(int sw) {
    if (hostPorts[sw].empty()) return std::nullopt;
    const int idx = hostPorts[sw].back();
    hostPorts[sw].pop_back();
    return idx;
  }
};

}  // namespace

Result<Projection> LinkProjector::projectWithAssignment(const topo::Topology& topo,
                                                        const Plant& plant,
                                                        const std::vector<int>& assignment) {
  if (static_cast<int>(assignment.size()) != topo.numSwitches()) {
    return makeError("assignment size does not match topology");
  }
  for (const int part : assignment) {
    if (part < 0 || part >= plant.numSwitches()) {
      return makeError(strFormat("assignment references physical switch %d", part));
    }
  }

  ResourcePools pools(plant);
  Projection proj(topo.name(), topo.numSwitches(), topo.numHosts());
  for (topo::SwitchId sw = 0; sw < topo.numSwitches(); ++sw) {
    proj.setPhysSwitchOf(sw, assignment[sw]);
  }

  // Realize every logical fabric link (paper: self-links first is not
  // required — pools are disjoint — so we go in link order for determinism).
  for (int li = 0; li < topo.numLinks(); ++li) {
    const topo::Link& link = topo.link(li);
    const int pa = assignment[link.a.sw];
    const int pb = assignment[link.b.sw];
    // On-demand optical fallback (§VII-A) when the fixed pool runs dry.
    const auto realizeOptical = [&]() -> Status<Error> {
      const auto circuit = pools.takeCircuit(plant, pa, pb);
      if (!circuit) {
        return makeError(strFormat(
            pa == pb ? "physical switch %d is out of self-links (logical link %d needs "
                       "one more; add self-link cables, flex ports, or repartition)"
                     : "no link budget left between physical switches %d and %d "
                       "(logical link %d; reserve more inter-switch cables or flex "
                       "ports, Eq. 2)",
            pa, pa == pb ? li : pb, li));
      }
      const PhysPort& endA = circuit->a.sw == pa ? circuit->a : circuit->b;
      const PhysPort& endB = circuit->a.sw == pa ? circuit->b : circuit->a;
      proj.mapPort(link.a, endA);
      proj.mapPort(link.b, endB);
      const int idx = proj.addOpticalCircuit(PhysLink{endA, endB});
      proj.addRealizedLink(RealizedLink{li, /*interSwitch=*/pa != pb,
                                        /*optical=*/true, idx});
      return {};
    };

    if (pa == pb) {
      const auto idx = pools.takeSelfLink(pa);
      if (!idx) {
        if (auto s = realizeOptical(); !s) return s.error();
        continue;
      }
      const PhysLink& phys = plant.selfLinks[*idx];
      proj.mapPort(link.a, phys.a);
      proj.mapPort(link.b, phys.b);
      proj.addRealizedLink(RealizedLink{li, /*interSwitch=*/false, /*optical=*/false,
                                        *idx});
    } else {
      const auto idx = pools.takeInterLink(pa, pb);
      if (!idx) {
        if (auto s = realizeOptical(); !s) return s.error();
        continue;
      }
      const PhysLink& phys = plant.interLinks[*idx];
      // Orient so each logical endpoint lands on its part's switch.
      const PhysPort& endA = phys.a.sw == pa ? phys.a : phys.b;
      const PhysPort& endB = phys.a.sw == pa ? phys.b : phys.a;
      proj.mapPort(link.a, endA);
      proj.mapPort(link.b, endB);
      proj.addRealizedLink(RealizedLink{li, /*interSwitch=*/true, /*optical=*/false,
                                        *idx});
    }
  }

  // Pin hosts.
  for (topo::HostId h = 0; h < topo.numHosts(); ++h) {
    const int physSw = assignment[topo.hostSwitch(h)];
    const auto idx = pools.takeHostPort(physSw);
    if (!idx) {
      return makeError(strFormat(
          "physical switch %d has no free host port for host %d "
          "(move hosts or rebalance the partition)", physSw, h));
    }
    proj.mapHost(h, plant.hostPorts[*idx]);
  }

  if (auto s = proj.validate(topo, plant); !s) return s.error();
  return proj;
}

Result<Projection> LinkProjector::project(const topo::Topology& topo, const Plant& plant,
                                          const LinkProjectorOptions& options) {
  if (auto s = topo.validate(/*requireConnected=*/false); !s) return s.error();
  if (plant.numSwitches() == 0) return makeError("plant has no switches");

  std::string lastError = "projection failed";
  const int maxParts = std::min(plant.numSwitches(), std::max(1, topo.numSwitches()));
  for (int parts = 1; parts <= maxParts; ++parts) {
    if (parts == 1) {
      std::vector<int> assignment(static_cast<std::size_t>(topo.numSwitches()), 0);
      auto r = projectWithAssignment(topo, plant, assignment);
      if (r) return r;
      lastError = r.error().message;
      continue;
    }
    for (int attempt = 0; attempt < options.partitionAttempts; ++attempt) {
      partition::PartitionOptions popt = options.partition;
      popt.parts = parts;
      popt.seed = options.partition.seed + static_cast<std::uint64_t>(attempt) * 7919;
      auto part = partition::partitionGraph(topo.switchGraph(), popt);
      if (!part) {
        lastError = part.error().message;
        continue;
      }
      auto r = projectWithAssignment(topo, plant, part.value().assignment);
      if (r) {
        SDT_DEBUG << "projected " << topo.name() << " on " << parts
                  << " switches (cut=" << part.value().cutWeight << ")";
        return r;
      }
      lastError = r.error().message;
    }
  }
  return makeError("cannot project '" + topo.name() + "' onto this plant: " + lastError);
}

}  // namespace sdt::projection
