// TurboNet baseline (Cao et al., ToN 2022; paper §III-C, §VI-C).
//
// TurboNet emulates topologies on P4 (Tofino) switches by looping packets
// through dedicated *loopback ports*: each emulated internal link consumes a
// physical port pair, and traffic that traverses it crosses the port twice
// (once out, once back in), halving the usable bandwidth. Reconfiguration
// requires recompiling and reloading the P4 program (tens of seconds+).
//
// We model a TurboNet deployment as an SDT-style plant in which half of each
// switch's ports are reserved as loopback pairs (the self-link pool) at half
// the nominal bandwidth; external connectivity (hosts, inter-switch cables)
// uses the other half. Paper §VI-A compares only against TurboNet's Port
// Mapper (PM); the Queue Mapper (QM) variant lacks queues for DC use and is
// exposed here only in the cost model.
#pragma once

#include "common/result.hpp"
#include "partition/partitioner.hpp"
#include "projection/projection.hpp"

namespace sdt::projection {

struct TurboNetOptions {
  partition::PartitionOptions partition;
  int hostPortsPerSwitch = 11;
  int interLinksPerPair = 8;
};

struct TurboNetResult {
  Projection projection;
  Plant plant;
  /// Usable bandwidth per emulated link after loopback halving.
  Gbps effectiveLinkSpeed{0.0};
};

class TurboNetProjector {
 public:
  static Result<TurboNetResult> project(const topo::Topology& topo,
                                        const PhysicalSwitchSpec& spec, int numSwitches,
                                        const TurboNetOptions& options = {});
};

}  // namespace sdt::projection
