// Streamed edge iteration over logical topologies (ROADMAP item 2).
//
// A warehouse-scale logical topology (10^5-10^6 switches) is too large to
// materialize as a Topology — ports, links, and host records alone dominate
// memory — but its *switch graph* can be replayed edge-by-edge in O(1)
// generator state. EdgeStream is that replay contract: the streaming
// partitioner (partition/streaming.hpp) consumes it with O(parts) state plus
// a compact per-vertex table, never holding the adjacency in memory.
//
// Two replay orders are offered, both deterministic:
//  - edge-major: every undirected edge exactly once (HDRF/DBH consume this);
//  - vertex-major: every vertex with its full incident list, so each edge is
//    visited twice, once per endpoint (LDG/Fennel consume this). Synthetic
//    generators derive a vertex's neighborhood in O(degree) arithmetic, so
//    vertex-major replay needs no adjacency storage either.
//
// Implementations: GraphStream wraps an in-memory Graph (used to route the
// existing partitionGraph callers through the streaming heuristics), and
// synthetic generators mirror generators.cpp vertex-for-vertex at any scale:
// FatTreeStream(k) == makeFatTree(k).switchGraph(), Torus3DStream(x,y,z) ==
// makeTorus3D(x,y,z).switchGraph(), and ScaledZooStream tiles a zoo WAN into
// a ring of replicas (the "scaled-zoo" plant-size axis of the shootout).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "topo/graph.hpp"

namespace sdt::topo {

/// One incident record during vertex-major replay: vertex `v` with its full
/// neighbor list (parallel edges repeated). The spans alias generator
/// scratch buffers — valid only inside the visitor call.
struct VertexRecord {
  int v = 0;
  const std::vector<int>& neighbors;
  const std::vector<std::int64_t>& weights;  ///< parallel to `neighbors`
  std::int64_t weightedDegree = 0;           ///< sum of `weights`
};

class EdgeStream {
 public:
  virtual ~EdgeStream() = default;

  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual int numVertices() const = 0;
  [[nodiscard]] virtual std::int64_t numEdges() const = 0;
  /// Sum of edge weights (streaming partitioners size part capacities from
  /// it; exact for every implementation here).
  [[nodiscard]] virtual std::int64_t totalWeight() const = 0;

  /// Edge-major replay: visit(u, v, weight) once per undirected edge, in a
  /// deterministic implementation-defined order.
  virtual void forEachEdge(
      const std::function<void(int u, int v, std::int64_t weight)>& visit) const = 0;

  /// Vertex-major replay: visit each vertex 0..n-1 in order with its full
  /// incident list (each undirected edge appears in both endpoints' lists).
  virtual void forEachVertex(const std::function<void(const VertexRecord&)>& visit) const;
};

/// Replays an in-memory Graph (borrowed; must outlive the stream).
class GraphStream final : public EdgeStream {
 public:
  explicit GraphStream(const Graph& graph, std::string name = "graph");

  [[nodiscard]] std::string name() const override { return name_; }
  [[nodiscard]] int numVertices() const override { return graph_.numVertices(); }
  [[nodiscard]] std::int64_t numEdges() const override { return graph_.numEdges(); }
  [[nodiscard]] std::int64_t totalWeight() const override { return totalWeight_; }
  void forEachEdge(
      const std::function<void(int, int, std::int64_t)>& visit) const override;
  void forEachVertex(const std::function<void(const VertexRecord&)>& visit) const override;

 private:
  const Graph& graph_;
  std::string name_;
  std::int64_t totalWeight_ = 0;
};

/// Switch graph of the 3-layer Fat-Tree(k): k^2/4 cores, k pods of k/2
/// aggregation + k/2 edge switches; same vertex ids as makeFatTree.
class FatTreeStream final : public EdgeStream {
 public:
  explicit FatTreeStream(int k);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] int numVertices() const override;
  [[nodiscard]] std::int64_t numEdges() const override;
  [[nodiscard]] std::int64_t totalWeight() const override { return numEdges(); }
  void forEachEdge(
      const std::function<void(int, int, std::int64_t)>& visit) const override;
  void forEachVertex(const std::function<void(const VertexRecord&)>& visit) const override;

 private:
  int k_;
};

/// Switch graph of the 3-D torus (wraparound rings, a dimension of size 2
/// contributes a single link); same vertex ids as makeTorus3D.
class Torus3DStream final : public EdgeStream {
 public:
  Torus3DStream(int xDim, int yDim, int zDim);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] int numVertices() const override { return x_ * y_ * z_; }
  [[nodiscard]] std::int64_t numEdges() const override;
  [[nodiscard]] std::int64_t totalWeight() const override { return numEdges(); }
  void forEachEdge(
      const std::function<void(int, int, std::int64_t)>& visit) const override;
  void forEachVertex(const std::function<void(const VertexRecord&)>& visit) const override;

 private:
  int x_, y_, z_;
};

/// `copies` replicas of zoo catalog entry `zooIndex` (topo/zoo.hpp), stitched
/// into a ring through each replica's switch 0 (gateway). Only one replica's
/// graph is held in memory; vertex id = copy * baseVertices + localId.
class ScaledZooStream final : public EdgeStream {
 public:
  ScaledZooStream(int zooIndex, int copies);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] int numVertices() const override;
  [[nodiscard]] std::int64_t numEdges() const override;
  [[nodiscard]] std::int64_t totalWeight() const override { return numEdges(); }
  void forEachEdge(
      const std::function<void(int, int, std::int64_t)>& visit) const override;
  void forEachVertex(const std::function<void(const VertexRecord&)>& visit) const override;

 private:
  int zooIndex_;
  int copies_;
  Graph base_;  ///< one replica's switch graph (small; zoo WANs are 4-754 nodes)
};

}  // namespace sdt::topo
