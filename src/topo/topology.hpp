// Logical topology model: the graph of logical switches, hosts, and links
// that a user asks SDT to project (paper §III-B "logical topology").
//
// Ports on each logical switch are dense 0..radix-1 indices, assigned in the
// order links are attached. Links come in two kinds:
//   - switch-switch links (the fabric; these are what Topology Projection maps
//     onto physical self-links / inter-switch links), and
//   - host links (node attachments; these map onto dedicated host-facing
//     physical ports and are excluded from the projection budget, §IV-A).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "common/units.hpp"
#include "topo/graph.hpp"

namespace sdt::topo {

using SwitchId = int;
using HostId = int;
using PortId = int;

/// One end of a link: a logical switch and a port on it.
struct SwitchPort {
  SwitchId sw = -1;
  PortId port = -1;

  auto operator<=>(const SwitchPort&) const = default;
};

/// A fabric link between two logical switch ports.
struct Link {
  SwitchPort a;
  SwitchPort b;
  Gbps speed{10.0};

  /// The far end as seen from switch `sw`.
  [[nodiscard]] SwitchPort peerOf(SwitchId sw) const { return a.sw == sw ? b : a; }
};

/// A host attachment: host `host` hangs off `attach` (one port of a switch).
struct HostLink {
  HostId host = -1;
  SwitchPort attach;
  Gbps speed{10.0};
};

class Topology {
 public:
  Topology() = default;
  explicit Topology(std::string name, int numSwitches = 0)
      : name_(std::move(name)), portsUsed_(static_cast<std::size_t>(numSwitches), 0) {}

  [[nodiscard]] const std::string& name() const { return name_; }
  void setName(std::string n) { name_ = std::move(n); }

  [[nodiscard]] int numSwitches() const { return static_cast<int>(portsUsed_.size()); }
  [[nodiscard]] int numHosts() const { return static_cast<int>(hostLinks_.size()); }
  [[nodiscard]] int numLinks() const { return static_cast<int>(links_.size()); }

  /// Adds `count` switches; returns the id of the first one.
  SwitchId addSwitches(int count);

  /// Connects switches `a` and `b` with a fabric link; ports auto-assigned.
  /// Returns the link index.
  int connect(SwitchId a, SwitchId b, Gbps speed = Gbps{10.0});

  /// Attaches a new host to switch `sw`; returns the host id.
  HostId attachHost(SwitchId sw, Gbps speed = Gbps{10.0});

  [[nodiscard]] const std::vector<Link>& links() const { return links_; }
  [[nodiscard]] const std::vector<HostLink>& hostLinks() const { return hostLinks_; }
  [[nodiscard]] const Link& link(int index) const { return links_[index]; }
  [[nodiscard]] const HostLink& hostLink(HostId h) const { return hostLinks_[h]; }

  /// Total ports in use on switch `sw` (fabric + host-facing).
  [[nodiscard]] int radix(SwitchId sw) const { return portsUsed_[sw]; }
  /// Fabric-only port count on `sw` (what TP must provide, §IV-A).
  [[nodiscard]] int fabricRadix(SwitchId sw) const;
  /// Sum of fabric ports over all switches == 2 * numLinks().
  [[nodiscard]] int totalFabricPorts() const { return 2 * numLinks(); }

  /// Which switch a host attaches to.
  [[nodiscard]] SwitchId hostSwitch(HostId h) const { return hostLinks_[h].attach.sw; }

  /// Fabric link incident to (sw, port), if any.
  [[nodiscard]] std::optional<int> linkAt(SwitchPort sp) const;
  /// Host attached at (sw, port), if any.
  [[nodiscard]] std::optional<HostId> hostAt(SwitchPort sp) const;

  /// Switch-level graph (one vertex per switch, one edge per fabric link),
  /// e.g. for partitioning or diameter computations.
  [[nodiscard]] Graph switchGraph() const;

  /// Neighbor switch reached from (sw, port), if that port carries a fabric
  /// link; std::nullopt for host ports / unused ports.
  [[nodiscard]] std::optional<SwitchPort> neighborOf(SwitchPort sp) const;

  /// Fabric links incident to switch `sw` (indices into links()).
  [[nodiscard]] std::vector<int> linksOf(SwitchId sw) const;

  /// Hosts attached to switch `sw`.
  [[nodiscard]] std::vector<HostId> hostsOf(SwitchId sw) const;

  /// Structural sanity: port uniqueness, endpoint validity, connectivity of
  /// the switch graph when `requireConnected`.
  [[nodiscard]] Status<Error> validate(bool requireConnected = true) const;

 private:
  PortId allocPort(SwitchId sw) { return portsUsed_[sw]++; }

  std::string name_;
  std::vector<int> portsUsed_;
  std::vector<Link> links_;
  std::vector<HostLink> hostLinks_;
};

}  // namespace sdt::topo
