#include "topo/zoo.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <set>

#include "common/rng.hpp"
#include "common/strings.hpp"

namespace sdt::topo {

namespace {

enum class Style { kChordedRing, kHubSpoke, kLadder, kSparseMesh };

const char* styleName(Style s) {
  switch (s) {
    case Style::kChordedRing: return "ring";
    case Style::kHubSpoke: return "hub";
    case Style::kLadder: return "ladder";
    case Style::kSparseMesh: return "mesh";
  }
  return "?";
}

/// Node count for entry i. Lognormal-ish body (median ~21) with a pinned
/// tail: index 260 is the "Kdl"-sized giant (754 nodes, the one Zoo entry
/// that defeats every plant), indices 249..259 are large regionals that only
/// fit the full-capacity plants, and index 248 sits in the middle band.
int nodeCountFor(int index, Rng& rng) {
  if (index == 260) return 754;                                    // the "Kdl" giant
  if (index >= 249) return 350 + static_cast<int>(rng.below(200));  // 350..549 nodes
  if (index == 248) return 260;                                     // middle band
  const double body = std::exp(3.0 + 0.55 * (rng.uniform() * 2.0 - 1.0) +
                               0.35 * (rng.uniform() * 2.0 - 1.0));
  return std::clamp(static_cast<int>(body), 4, 40);
}

Style styleFor(int index, Rng& rng) {
  // The large tail uses the sparse-mesh style so its edge count tracks
  // ~1.25x nodes, like the Zoo's big national networks.
  if (index >= 248) return Style::kSparseMesh;
  switch (rng.below(4)) {
    case 0: return Style::kChordedRing;
    case 1: return Style::kHubSpoke;
    case 2: return Style::kLadder;
    default: return Style::kSparseMesh;
  }
}

void buildChordedRing(Topology& topo, int n, Rng& rng) {
  for (int i = 0; i + 1 < n; ++i) topo.connect(i, i + 1);
  if (n > 2) topo.connect(n - 1, 0);
  // A few chords across the ring (long-haul links).
  const int chords = std::max(0, n / 8);
  std::set<std::pair<int, int>> used;
  for (int c = 0; c < chords; ++c) {
    const int u = static_cast<int>(rng.below(static_cast<std::uint64_t>(n)));
    const int v = (u + n / 2 + static_cast<int>(rng.below(3))) % n;
    if (u == v) continue;
    auto key = std::minmax(u, v);
    if (used.insert({key.first, key.second}).second) topo.connect(u, v);
  }
}

void buildHubSpoke(Topology& topo, int n, Rng& rng) {
  // 1-3 hubs in a small clique; every other node homes to 1-2 hubs.
  const int hubs = std::min(n - 1, 1 + static_cast<int>(rng.below(3)));
  for (int i = 0; i < hubs; ++i) {
    for (int j = i + 1; j < hubs; ++j) topo.connect(i, j);
  }
  for (int v = hubs; v < n; ++v) {
    const int primary = static_cast<int>(rng.below(static_cast<std::uint64_t>(hubs)));
    topo.connect(v, primary);
    if (hubs > 1 && rng.uniform() < 0.3) {
      const int secondary = (primary + 1) % hubs;
      topo.connect(v, secondary);
    }
  }
}

void buildLadder(Topology& topo, int n, Rng& rng) {
  // Two parallel chains with rungs (dual-plane backbone).
  const int half = n / 2;
  for (int i = 0; i + 1 < half; ++i) topo.connect(i, i + 1);
  for (int i = half; i + 1 < n; ++i) topo.connect(i, i + 1);
  const int rungs = std::max(1, half / 2);
  for (int r = 0; r < rungs; ++r) {
    const int i = static_cast<int>(rng.below(static_cast<std::uint64_t>(half)));
    if (half + i < n) topo.connect(i, half + i);
  }
  // Stitch the planes at the ends so the graph is connected even with few rungs.
  if (half >= 1 && half < n) topo.connect(0, half);
}

void buildSparseMesh(Topology& topo, int n, Rng& rng) {
  // Random spanning tree + extra Waxman-ish edges (edge/node ratio ~1.25).
  for (int v = 1; v < n; ++v) {
    const int u = static_cast<int>(rng.below(static_cast<std::uint64_t>(v)));
    topo.connect(u, v);
  }
  const int extra = n / 4;
  std::set<std::pair<int, int>> used;
  for (int e = 0; e < extra; ++e) {
    const int u = static_cast<int>(rng.below(static_cast<std::uint64_t>(n)));
    const int v = static_cast<int>(rng.below(static_cast<std::uint64_t>(n)));
    if (u == v) continue;
    auto key = std::minmax(u, v);
    if (used.insert({key.first, key.second}).second) topo.connect(u, v);
  }
}

}  // namespace

int zooSize() { return 261; }

std::vector<ZooEntry> zooCatalog() {
  std::vector<ZooEntry> out;
  out.reserve(static_cast<std::size_t>(zooSize()));
  for (int i = 0; i < zooSize(); ++i) {
    out.push_back(ZooEntry{strFormat("zoo-%03d", i), i});
  }
  return out;
}

Topology makeZooTopology(int index) {
  assert(index >= 0 && index < zooSize());
  Rng rng(0x5D7'2023ULL * 1000003ULL + static_cast<std::uint64_t>(index));
  const int n = nodeCountFor(index, rng);
  const Style style = styleFor(index, rng);
  Topology topo(strFormat("zoo-%03d-%s-n%d", index, styleName(style), n), n);
  switch (style) {
    case Style::kChordedRing: buildChordedRing(topo, n, rng); break;
    case Style::kHubSpoke: buildHubSpoke(topo, n, rng); break;
    case Style::kLadder: buildLadder(topo, n, rng); break;
    case Style::kSparseMesh: buildSparseMesh(topo, n, rng); break;
  }
  for (SwitchId sw = 0; sw < topo.numSwitches(); ++sw) topo.attachHost(sw);
  return topo;
}

}  // namespace sdt::topo
