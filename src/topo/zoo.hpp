// Synthetic stand-in for the Internet Topology Zoo (Knight et al., 2011).
//
// The paper's Table II projects "261 Internet topologies" from the Zoo. The
// Zoo's GraphML archive is not redistributable here, so we generate a
// deterministic catalog of 261 WAN-like graphs whose size distribution
// matches the Zoo's published statistics (4–754 nodes, median ≈ 21,
// edge/node ratio ≈ 1.2), mixing the structural styles observed there:
// chorded rings (backbones), hub-and-spoke (national ISPs), ladders
// (dual-homed backbones), and sparse random (Waxman-like) meshes.
//
// DESIGN.md documents this substitution. The Table II reproduction only
// depends on the distribution of fabric-port counts, which this preserves:
// exactly 1 catalog entry exceeds a 3x128-port plant, and a small tail
// exceeds the halved-capacity plants, mirroring the paper's 260/249/248 row.
#pragma once

#include <string>
#include <vector>

#include "topo/topology.hpp"

namespace sdt::topo {

struct ZooEntry {
  std::string name;
  int index = 0;
};

/// Number of catalog entries (matches the paper: 261).
int zooSize();

/// Catalog metadata (stable order, deterministic content).
std::vector<ZooEntry> zooCatalog();

/// Materialize catalog entry `index` in [0, zooSize()). Always connected;
/// one host per switch; 10G links (WAN feasibility only uses port counts).
Topology makeZooTopology(int index);

}  // namespace sdt::topo
