// Undirected weighted graph used for topology partitioning and analysis.
//
// Vertices are dense 0..n-1 indices; parallel edges are allowed (a Torus
// ring of length 2 produces a double edge, and the partitioner must count
// both when computing the cut).
#pragma once

#include <cstdint>
#include <vector>

namespace sdt::topo {

struct GraphEdge {
  int u = 0;
  int v = 0;
  std::int64_t weight = 1;
};

class Graph {
 public:
  Graph() = default;
  explicit Graph(int numVertices) : adjacency_(numVertices) {}

  [[nodiscard]] int numVertices() const { return static_cast<int>(adjacency_.size()); }
  [[nodiscard]] int numEdges() const { return static_cast<int>(edges_.size()); }

  /// Adds an undirected edge; returns its index.
  int addEdge(int u, int v, std::int64_t weight = 1);

  [[nodiscard]] const GraphEdge& edge(int index) const { return edges_[index]; }
  [[nodiscard]] const std::vector<GraphEdge>& edges() const { return edges_; }

  /// Edge indices incident to `v` (self-loops appear once).
  [[nodiscard]] const std::vector<int>& incidentEdges(int v) const { return adjacency_[v]; }

  /// Sum of incident edge weights.
  [[nodiscard]] std::int64_t weightedDegree(int v) const;
  [[nodiscard]] int degree(int v) const { return static_cast<int>(adjacency_[v].size()); }

  /// Vertex on the other side of edge `e` from `v`.
  [[nodiscard]] int other(int e, int v) const {
    const GraphEdge& ed = edges_[e];
    return ed.u == v ? ed.v : ed.u;
  }

  [[nodiscard]] bool isConnected() const;

  /// BFS hop distances from `src` (-1 when unreachable).
  [[nodiscard]] std::vector<int> bfsDistances(int src) const;

  /// Longest shortest-path over all reachable pairs (0 for empty graphs).
  [[nodiscard]] int diameter() const;

  /// Number of connected components.
  [[nodiscard]] int componentCount() const;

 private:
  std::vector<GraphEdge> edges_;
  std::vector<std::vector<int>> adjacency_;
};

}  // namespace sdt::topo
