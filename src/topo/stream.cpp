#include "topo/stream.hpp"

#include <cassert>

#include "common/strings.hpp"
#include "topo/generators.hpp"
#include "topo/zoo.hpp"

namespace sdt::topo {

namespace {

/// Shared scratch for vertex-major replay: collects one vertex's incident
/// list, emits it, and is reused for the next vertex.
class VertexEmitter {
 public:
  explicit VertexEmitter(const std::function<void(const VertexRecord&)>& visit)
      : visit_(visit) {}

  void add(int neighbor, std::int64_t weight) {
    neighbors_.push_back(neighbor);
    weights_.push_back(weight);
    degree_ += weight;
  }

  void emit(int v) {
    visit_(VertexRecord{v, neighbors_, weights_, degree_});
    neighbors_.clear();
    weights_.clear();
    degree_ = 0;
  }

 private:
  const std::function<void(const VertexRecord&)>& visit_;
  std::vector<int> neighbors_;
  std::vector<std::int64_t> weights_;
  std::int64_t degree_ = 0;
};

}  // namespace

void EdgeStream::forEachVertex(
    const std::function<void(const VertexRecord&)>& visit) const {
  // Fallback for streams without a cheap neighborhood formula: buffer the
  // adjacency once. Every stream in this file overrides with an O(degree)
  // derivation instead; keep it that way for warehouse-scale sources.
  std::vector<std::vector<std::pair<int, std::int64_t>>> adjacency(
      static_cast<std::size_t>(numVertices()));
  forEachEdge([&](int u, int v, std::int64_t w) {
    adjacency[u].emplace_back(v, w);
    if (u != v) adjacency[v].emplace_back(u, w);
  });
  VertexEmitter out(visit);
  for (int v = 0; v < numVertices(); ++v) {
    for (const auto& [u, w] : adjacency[v]) out.add(u, w);
    out.emit(v);
  }
}

GraphStream::GraphStream(const Graph& graph, std::string name)
    : graph_(graph), name_(std::move(name)) {
  for (const GraphEdge& e : graph_.edges()) totalWeight_ += e.weight;
}

void GraphStream::forEachEdge(
    const std::function<void(int, int, std::int64_t)>& visit) const {
  for (const GraphEdge& e : graph_.edges()) visit(e.u, e.v, e.weight);
}

void GraphStream::forEachVertex(
    const std::function<void(const VertexRecord&)>& visit) const {
  VertexEmitter out(visit);
  for (int v = 0; v < graph_.numVertices(); ++v) {
    for (const int e : graph_.incidentEdges(v)) {
      out.add(graph_.other(e, v), graph_.edge(e).weight);
    }
    out.emit(v);
  }
}

// ---------------------------------------------------------------------------
// FatTreeStream — vertex layout identical to makeFatTree: [0, k^2/4) cores;
// then per pod: k/2 aggs, k/2 edge switches.

FatTreeStream::FatTreeStream(int k) : k_(k) {
  assert(k >= 2 && k % 2 == 0);
}

std::string FatTreeStream::name() const { return strFormat("fattree-k%d", k_); }

int FatTreeStream::numVertices() const {
  const int half = k_ / 2;
  return half * half + k_ * k_;
}

std::int64_t FatTreeStream::numEdges() const {
  // Each pod: (k/2)^2 agg-core links + (k/2)^2 edge-agg links.
  const std::int64_t half = k_ / 2;
  return 2 * static_cast<std::int64_t>(k_) * half * half;
}

void FatTreeStream::forEachEdge(
    const std::function<void(int, int, std::int64_t)>& visit) const {
  const int half = k_ / 2;
  const int numCore = half * half;
  const auto coreId = [&](int group, int idx) { return group * half + idx; };
  const auto aggId = [&](int pod, int idx) { return numCore + pod * k_ + idx; };
  const auto edgeId = [&](int pod, int idx) { return numCore + pod * k_ + half + idx; };
  for (int pod = 0; pod < k_; ++pod) {
    for (int a = 0; a < half; ++a) {
      for (int c = 0; c < half; ++c) visit(aggId(pod, a), coreId(a, c), 1);
    }
    for (int e = 0; e < half; ++e) {
      for (int a = 0; a < half; ++a) visit(edgeId(pod, e), aggId(pod, a), 1);
    }
  }
}

void FatTreeStream::forEachVertex(
    const std::function<void(const VertexRecord&)>& visit) const {
  const int half = k_ / 2;
  const int numCore = half * half;
  VertexEmitter out(visit);
  // Core (group g, index c) peers with agg g of every pod.
  for (int core = 0; core < numCore; ++core) {
    const int group = core / half;
    for (int pod = 0; pod < k_; ++pod) out.add(numCore + pod * k_ + group, 1);
    out.emit(core);
  }
  for (int pod = 0; pod < k_; ++pod) {
    for (int a = 0; a < half; ++a) {
      // Agg a: its core group + every edge switch in the pod.
      for (int c = 0; c < half; ++c) out.add(a * half + c, 1);
      for (int e = 0; e < half; ++e) out.add(numCore + pod * k_ + half + e, 1);
      out.emit(numCore + pod * k_ + a);
    }
    for (int e = 0; e < half; ++e) {
      for (int a = 0; a < half; ++a) out.add(numCore + pod * k_ + a, 1);
      out.emit(numCore + pod * k_ + half + e);
    }
  }
}

// ---------------------------------------------------------------------------
// Torus3DStream — id = (z*yDim + y)*xDim + x, ring semantics identical to
// makeGrid: a dimension of size 2 carries a single link, size 1 none.

Torus3DStream::Torus3DStream(int xDim, int yDim, int zDim)
    : x_(xDim), y_(yDim), z_(zDim) {
  assert(xDim >= 2 && yDim >= 2 && zDim >= 2);
}

std::string Torus3DStream::name() const {
  return strFormat("torus3d-%dx%dx%d", x_, y_, z_);
}

namespace {
/// Links contributed by one ring of length `s` (makeGrid semantics).
std::int64_t ringLinks(int s) { return s <= 1 ? 0 : (s == 2 ? 1 : s); }
}  // namespace

std::int64_t Torus3DStream::numEdges() const {
  return ringLinks(x_) * y_ * z_ + ringLinks(y_) * x_ * z_ + ringLinks(z_) * x_ * y_;
}

void Torus3DStream::forEachEdge(
    const std::function<void(int, int, std::int64_t)>& visit) const {
  const MeshShape shape{x_, y_, z_};
  const auto ring = [&](int dimSize, auto&& idAt) {
    for (int i = 0; i + 1 < dimSize; ++i) visit(idAt(i), idAt(i + 1), 1);
    if (dimSize > 2) visit(idAt(dimSize - 1), idAt(0), 1);
  };
  for (int z = 0; z < z_; ++z) {
    for (int y = 0; y < y_; ++y) {
      ring(x_, [&](int i) { return shape.index(i, y, z); });
    }
  }
  for (int z = 0; z < z_; ++z) {
    for (int x = 0; x < x_; ++x) {
      ring(y_, [&](int i) { return shape.index(x, i, z); });
    }
  }
  for (int y = 0; y < y_; ++y) {
    for (int x = 0; x < x_; ++x) {
      ring(z_, [&](int i) { return shape.index(x, y, i); });
    }
  }
}

void Torus3DStream::forEachVertex(
    const std::function<void(const VertexRecord&)>& visit) const {
  const MeshShape shape{x_, y_, z_};
  VertexEmitter out(visit);
  const auto addDim = [&](int c, int dimSize, auto&& idAt) {
    if (dimSize == 2) {
      out.add(idAt(1 - c), 1);  // single link, no wrap double-edge
    } else if (dimSize > 2) {
      out.add(idAt((c + 1) % dimSize), 1);
      out.add(idAt((c + dimSize - 1) % dimSize), 1);
    }
  };
  for (int v = 0; v < numVertices(); ++v) {
    const int cx = shape.xOf(v), cy = shape.yOf(v), cz = shape.zOf(v);
    addDim(cx, x_, [&](int i) { return shape.index(i, cy, cz); });
    addDim(cy, y_, [&](int i) { return shape.index(cx, i, cz); });
    addDim(cz, z_, [&](int i) { return shape.index(cx, cy, i); });
    out.emit(v);
  }
}

// ---------------------------------------------------------------------------
// ScaledZooStream — `copies` replicas of one zoo WAN, gateway ring through
// each replica's switch 0.

ScaledZooStream::ScaledZooStream(int zooIndex, int copies)
    : zooIndex_(zooIndex), copies_(copies) {
  assert(copies >= 1);
  base_ = makeZooTopology(zooIndex).switchGraph();
}

std::string ScaledZooStream::name() const {
  return strFormat("zoo%d-x%d", zooIndex_, copies_);
}

int ScaledZooStream::numVertices() const { return copies_ * base_.numVertices(); }

std::int64_t ScaledZooStream::numEdges() const {
  return static_cast<std::int64_t>(copies_) * base_.numEdges() + ringLinks(copies_);
}

void ScaledZooStream::forEachEdge(
    const std::function<void(int, int, std::int64_t)>& visit) const {
  const int n = base_.numVertices();
  for (int copy = 0; copy < copies_; ++copy) {
    const int offset = copy * n;
    for (const GraphEdge& e : base_.edges()) visit(offset + e.u, offset + e.v, e.weight);
  }
  for (int copy = 0; copy + 1 < copies_; ++copy) visit(copy * n, (copy + 1) * n, 1);
  if (copies_ > 2) visit((copies_ - 1) * n, 0, 1);
}

void ScaledZooStream::forEachVertex(
    const std::function<void(const VertexRecord&)>& visit) const {
  const int n = base_.numVertices();
  VertexEmitter out(visit);
  for (int v = 0; v < numVertices(); ++v) {
    const int copy = v / n;
    const int local = v % n;
    for (const int e : base_.incidentEdges(local)) {
      out.add(copy * n + base_.other(e, local), base_.edge(e).weight);
    }
    if (local == 0 && copies_ > 1) {
      if (copies_ == 2) {
        out.add((1 - copy) * n, 1);
      } else {
        out.add(((copy + 1) % copies_) * n, 1);
        out.add(((copy + copies_ - 1) % copies_) * n, 1);
      }
    }
    out.emit(v);
  }
}

}  // namespace sdt::topo
