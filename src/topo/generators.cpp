#include "topo/generators.hpp"

#include <cassert>

#include "common/strings.hpp"

namespace sdt::topo {

namespace {
void attachHostsEverywhere(Topology& topo, const GenOptions& opt) {
  for (SwitchId sw = 0; sw < topo.numSwitches(); ++sw) {
    for (int h = 0; h < opt.hostsPerSwitch; ++h) topo.attachHost(sw, opt.linkSpeed);
  }
}
}  // namespace

Topology makeLine(int numSwitches, const GenOptions& opt) {
  assert(numSwitches >= 1);
  Topology topo(strFormat("line-%d", numSwitches), numSwitches);
  for (int i = 0; i + 1 < numSwitches; ++i) topo.connect(i, i + 1, opt.linkSpeed);
  attachHostsEverywhere(topo, opt);
  return topo;
}

Topology makeRing(int numSwitches, const GenOptions& opt) {
  assert(numSwitches >= 2);
  Topology topo(strFormat("ring-%d", numSwitches), numSwitches);
  for (int i = 0; i + 1 < numSwitches; ++i) topo.connect(i, i + 1, opt.linkSpeed);
  if (numSwitches > 2) topo.connect(numSwitches - 1, 0, opt.linkSpeed);
  attachHostsEverywhere(topo, opt);
  return topo;
}

Topology makeStar(int numSwitches, const GenOptions& opt) {
  assert(numSwitches >= 2);
  Topology topo(strFormat("star-%d", numSwitches), numSwitches);
  for (int i = 1; i < numSwitches; ++i) topo.connect(0, i, opt.linkSpeed);
  attachHostsEverywhere(topo, opt);
  return topo;
}

Topology makeFullMesh(int numSwitches, const GenOptions& opt) {
  assert(numSwitches >= 2);
  Topology topo(strFormat("fullmesh-%d", numSwitches), numSwitches);
  for (int i = 0; i < numSwitches; ++i) {
    for (int j = i + 1; j < numSwitches; ++j) topo.connect(i, j, opt.linkSpeed);
  }
  attachHostsEverywhere(topo, opt);
  return topo;
}

Topology makeHypercube(int dims, const GenOptions& opt) {
  assert(dims >= 1 && dims <= 20);
  const int n = 1 << dims;
  Topology topo(strFormat("hypercube-%d", dims), n);
  for (int i = 0; i < n; ++i) {
    for (int d = 0; d < dims; ++d) {
      const int j = i ^ (1 << d);
      if (j > i) topo.connect(i, j, opt.linkSpeed);
    }
  }
  attachHostsEverywhere(topo, opt);
  return topo;
}

Topology makeFatTree(int k, const GenOptions& opt) {
  assert(k >= 2 && k % 2 == 0);
  const int half = k / 2;
  const int numCore = half * half;
  const int numAggPerPod = half;
  const int numEdgePerPod = half;
  const int numSwitches = numCore + k * (numAggPerPod + numEdgePerPod);
  Topology topo(strFormat("fattree-k%d", k), numSwitches);

  // Switch id layout: [0, numCore) cores; then per pod: aggs, then edges.
  const auto coreId = [&](int group, int idx) { return group * half + idx; };
  const auto aggId = [&](int pod, int idx) { return numCore + pod * k + idx; };
  const auto edgeId = [&](int pod, int idx) { return numCore + pod * k + half + idx; };

  for (int pod = 0; pod < k; ++pod) {
    // Aggregation <-> core: agg `a` of each pod connects to core group `a`.
    for (int a = 0; a < numAggPerPod; ++a) {
      for (int c = 0; c < half; ++c) {
        topo.connect(aggId(pod, a), coreId(a, c), opt.linkSpeed);
      }
    }
    // Edge <-> aggregation: full bipartite inside the pod.
    for (int e = 0; e < numEdgePerPod; ++e) {
      for (int a = 0; a < numAggPerPod; ++a) {
        topo.connect(edgeId(pod, e), aggId(pod, a), opt.linkSpeed);
      }
    }
  }
  // Hosts: k/2 per edge switch (structural, k^3/4 total).
  for (int pod = 0; pod < k; ++pod) {
    for (int e = 0; e < numEdgePerPod; ++e) {
      for (int h = 0; h < half; ++h) topo.attachHost(edgeId(pod, e), opt.linkSpeed);
    }
  }
  return topo;
}

Topology makeDragonfly(int a, int g, int h, const GenOptions& opt) {
  assert(a >= 2 && g >= 2 && h >= 1);
  assert(a * h >= g - 1 && "not enough global links for all-to-all groups");
  const int numRouters = a * g;
  Topology topo(strFormat("dragonfly-a%d-g%d-h%d", a, g, h), numRouters);
  const auto routerId = [&](int group, int r) { return group * a + r; };

  // Local links: full mesh inside each group.
  for (int grp = 0; grp < g; ++grp) {
    for (int i = 0; i < a; ++i) {
      for (int j = i + 1; j < a; ++j) {
        topo.connect(routerId(grp, i), routerId(grp, j), opt.linkSpeed);
      }
    }
  }
  // Global links: canonical "consecutive" arrangement. Group gi's global
  // port index q (router q/h, slot q%h) connects to group gj where
  // gj = q if q < gi else q+1, provided the pairing is mutual; with
  // a*h == g-1 this wires exactly one link between every group pair.
  for (int gi = 0; gi < g; ++gi) {
    for (int q = 0; q < a * h; ++q) {
      const int gj = q < gi ? q : q + 1;
      if (gj >= g || gj <= gi) continue;  // add each pair once, from the lower group
      const int qPeer = gi < gj ? gi : gi - 1;  // gi's index as seen from gj
      if (qPeer >= a * h) continue;
      topo.connect(routerId(gi, q / h), routerId(gj, qPeer / h), opt.linkSpeed);
    }
  }
  attachHostsEverywhere(topo, opt);
  return topo;
}

namespace {
Topology makeGrid(const std::string& name, MeshShape shape, bool wrap,
                  const GenOptions& opt) {
  const int n = shape.x * shape.y * shape.z;
  Topology topo(name, n);
  const auto connectDim = [&](int dimSize, auto&& idAt) {
    // idAt(i) maps ring position to switch id for one fixed row/column.
    for (int i = 0; i + 1 < dimSize; ++i) topo.connect(idAt(i), idAt(i + 1), opt.linkSpeed);
    if (wrap && dimSize > 2) topo.connect(idAt(dimSize - 1), idAt(0), opt.linkSpeed);
  };
  for (int z = 0; z < shape.z; ++z) {
    for (int y = 0; y < shape.y; ++y) {
      connectDim(shape.x, [&](int i) { return shape.index(i, y, z); });
    }
  }
  for (int z = 0; z < shape.z; ++z) {
    for (int x = 0; x < shape.x; ++x) {
      connectDim(shape.y, [&](int i) { return shape.index(x, i, z); });
    }
  }
  if (shape.z > 1) {
    for (int y = 0; y < shape.y; ++y) {
      for (int x = 0; x < shape.x; ++x) {
        connectDim(shape.z, [&](int i) { return shape.index(x, y, i); });
      }
    }
  }
  attachHostsEverywhere(topo, opt);
  return topo;
}
}  // namespace

Topology makeMesh2D(int xDim, int yDim, const GenOptions& opt) {
  assert(xDim >= 1 && yDim >= 1);
  return makeGrid(strFormat("mesh2d-%dx%d", xDim, yDim), MeshShape{xDim, yDim, 1},
                  /*wrap=*/false, opt);
}

Topology makeMesh3D(int xDim, int yDim, int zDim, const GenOptions& opt) {
  assert(xDim >= 1 && yDim >= 1 && zDim >= 1);
  return makeGrid(strFormat("mesh3d-%dx%dx%d", xDim, yDim, zDim),
                  MeshShape{xDim, yDim, zDim}, /*wrap=*/false, opt);
}

Topology makeTorus2D(int xDim, int yDim, const GenOptions& opt) {
  assert(xDim >= 2 && yDim >= 2);
  return makeGrid(strFormat("torus2d-%dx%d", xDim, yDim), MeshShape{xDim, yDim, 1},
                  /*wrap=*/true, opt);
}

Topology makeTorus3D(int xDim, int yDim, int zDim, const GenOptions& opt) {
  assert(xDim >= 2 && yDim >= 2 && zDim >= 2);
  return makeGrid(strFormat("torus3d-%dx%dx%d", xDim, yDim, zDim),
                  MeshShape{xDim, yDim, zDim}, /*wrap=*/true, opt);
}

}  // namespace sdt::topo
