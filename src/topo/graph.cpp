#include "topo/graph.hpp"

#include <algorithm>
#include <cassert>
#include <queue>

namespace sdt::topo {

int Graph::addEdge(int u, int v, std::int64_t weight) {
  assert(u >= 0 && u < numVertices());
  assert(v >= 0 && v < numVertices());
  const int index = static_cast<int>(edges_.size());
  edges_.push_back(GraphEdge{u, v, weight});
  adjacency_[u].push_back(index);
  if (u != v) adjacency_[v].push_back(index);
  return index;
}

std::int64_t Graph::weightedDegree(int v) const {
  std::int64_t sum = 0;
  for (const int e : adjacency_[v]) sum += edges_[e].weight;
  return sum;
}

std::vector<int> Graph::bfsDistances(int src) const {
  std::vector<int> dist(static_cast<std::size_t>(numVertices()), -1);
  std::queue<int> queue;
  dist[src] = 0;
  queue.push(src);
  while (!queue.empty()) {
    const int v = queue.front();
    queue.pop();
    for (const int e : adjacency_[v]) {
      const int w = other(e, v);
      if (dist[w] < 0) {
        dist[w] = dist[v] + 1;
        queue.push(w);
      }
    }
  }
  return dist;
}

bool Graph::isConnected() const {
  if (numVertices() == 0) return true;
  const auto dist = bfsDistances(0);
  return std::all_of(dist.begin(), dist.end(), [](int d) { return d >= 0; });
}

int Graph::diameter() const {
  int best = 0;
  for (int v = 0; v < numVertices(); ++v) {
    const auto dist = bfsDistances(v);
    for (const int d : dist) best = std::max(best, d);
  }
  return best;
}

int Graph::componentCount() const {
  std::vector<char> seen(static_cast<std::size_t>(numVertices()), 0);
  int components = 0;
  for (int v = 0; v < numVertices(); ++v) {
    if (seen[v]) continue;
    ++components;
    std::queue<int> queue;
    queue.push(v);
    seen[v] = 1;
    while (!queue.empty()) {
      const int x = queue.front();
      queue.pop();
      for (const int e : adjacency_[x]) {
        const int w = other(e, x);
        if (!seen[w]) {
          seen[w] = 1;
          queue.push(w);
        }
      }
    }
  }
  return components;
}

}  // namespace sdt::topo
