#include "topo/topology.hpp"

#include <algorithm>
#include <cassert>
#include <set>

#include "common/strings.hpp"

namespace sdt::topo {

SwitchId Topology::addSwitches(int count) {
  assert(count >= 0);
  const SwitchId first = numSwitches();
  portsUsed_.resize(portsUsed_.size() + static_cast<std::size_t>(count), 0);
  return first;
}

int Topology::connect(SwitchId a, SwitchId b, Gbps speed) {
  assert(a >= 0 && a < numSwitches());
  assert(b >= 0 && b < numSwitches());
  Link link;
  link.a = SwitchPort{a, allocPort(a)};
  link.b = SwitchPort{b, allocPort(b)};
  link.speed = speed;
  links_.push_back(link);
  return static_cast<int>(links_.size()) - 1;
}

HostId Topology::attachHost(SwitchId sw, Gbps speed) {
  assert(sw >= 0 && sw < numSwitches());
  HostLink hl;
  hl.host = numHosts();
  hl.attach = SwitchPort{sw, allocPort(sw)};
  hl.speed = speed;
  hostLinks_.push_back(hl);
  return hl.host;
}

int Topology::fabricRadix(SwitchId sw) const {
  int count = 0;
  for (const Link& l : links_) {
    if (l.a.sw == sw) ++count;
    if (l.b.sw == sw) ++count;
  }
  return count;
}

std::optional<int> Topology::linkAt(SwitchPort sp) const {
  for (int i = 0; i < numLinks(); ++i) {
    if (links_[i].a == sp || links_[i].b == sp) return i;
  }
  return std::nullopt;
}

std::optional<HostId> Topology::hostAt(SwitchPort sp) const {
  for (const HostLink& hl : hostLinks_) {
    if (hl.attach == sp) return hl.host;
  }
  return std::nullopt;
}

Graph Topology::switchGraph() const {
  Graph g(numSwitches());
  for (const Link& l : links_) g.addEdge(l.a.sw, l.b.sw);
  return g;
}

std::optional<SwitchPort> Topology::neighborOf(SwitchPort sp) const {
  const auto li = linkAt(sp);
  if (!li) return std::nullopt;
  const Link& l = links_[*li];
  return l.a == sp ? l.b : l.a;
}

std::vector<int> Topology::linksOf(SwitchId sw) const {
  std::vector<int> out;
  for (int i = 0; i < numLinks(); ++i) {
    if (links_[i].a.sw == sw || links_[i].b.sw == sw) out.push_back(i);
  }
  return out;
}

std::vector<HostId> Topology::hostsOf(SwitchId sw) const {
  std::vector<HostId> out;
  for (const HostLink& hl : hostLinks_) {
    if (hl.attach.sw == sw) out.push_back(hl.host);
  }
  return out;
}

Status<Error> Topology::validate(bool requireConnected) const {
  std::set<SwitchPort> seen;
  const auto checkPort = [&](SwitchPort sp) -> Status<Error> {
    if (sp.sw < 0 || sp.sw >= numSwitches()) {
      return makeError(strFormat("link references unknown switch %d", sp.sw));
    }
    if (sp.port < 0 || sp.port >= portsUsed_[sp.sw]) {
      return makeError(strFormat("switch %d port %d out of range", sp.sw, sp.port));
    }
    if (!seen.insert(sp).second) {
      return makeError(strFormat("switch %d port %d used by two links", sp.sw, sp.port));
    }
    return {};
  };
  for (const Link& l : links_) {
    if (auto s = checkPort(l.a); !s) return s;
    if (auto s = checkPort(l.b); !s) return s;
    if (l.a.sw == l.b.sw && l.a.port == l.b.port) {
      return makeError("degenerate link: both endpoints identical");
    }
    if (l.speed.value <= 0) return makeError("link speed must be positive");
  }
  for (const HostLink& hl : hostLinks_) {
    if (auto s = checkPort(hl.attach); !s) return s;
  }
  if (requireConnected && numSwitches() > 0 && !switchGraph().isConnected()) {
    return makeError("switch graph is not connected");
  }
  return {};
}

}  // namespace sdt::topo
