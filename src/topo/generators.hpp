// Generators for the topology families used throughout the paper:
// the Fig-10 line topology, Fat-Tree(k), Dragonfly(a,g,h), 2D/3D Mesh,
// 2D/3D Torus, plus a few classics (ring, star, full mesh, hypercube) used
// by tests and the WAN catalog.
//
// Conventions shared by all generators:
//  - switches are added before hosts, so switch-switch ports are the
//    low-numbered ones on every switch;
//  - `hostsPerSwitch` hosts are attached to each *edge-level* switch
//    (Fat-Tree) or to every switch (direct networks);
//  - every link defaults to `linkSpeed`.
#pragma once

#include <string>

#include "topo/topology.hpp"

namespace sdt::topo {

struct GenOptions {
  int hostsPerSwitch = 1;
  Gbps linkSpeed{10.0};
};

/// N switches in a chain, one host on each (Fig. 10 uses n=8).
Topology makeLine(int numSwitches, const GenOptions& opt = {});

/// N switches in a cycle.
Topology makeRing(int numSwitches, const GenOptions& opt = {});

/// One hub switch and n-1 leaves.
Topology makeStar(int numSwitches, const GenOptions& opt = {});

/// Complete graph on n switches.
Topology makeFullMesh(int numSwitches, const GenOptions& opt = {});

/// d-dimensional hypercube (2^d switches).
Topology makeHypercube(int dims, const GenOptions& opt = {});

/// Standard 3-layer Fat-Tree with parameter k (k even): k^2/4 core switches,
/// k pods of k/2 aggregation + k/2 edge switches, k/2 hosts per edge switch
/// (paper Fig. 1; k=4 gives 20 switches / 16 hosts). `opt.hostsPerSwitch`
/// is ignored: host count is structural.
Topology makeFatTree(int k, const GenOptions& opt = {});

/// Dragonfly (Kim et al.): g groups of a routers; full mesh inside a group;
/// h global links per router. Requires a*h >= g-1; the canonical balanced
/// config in the paper is a=4, g=9, h=2 (36 routers). `hostsPerSwitch`
/// hosts ("p") are attached to every router (paper uses p=h=2 per router
/// and then selects 32 of the 72 ports... hosts are selectable later).
Topology makeDragonfly(int a, int g, int h, const GenOptions& opt = {});

/// 2D mesh (no wraparound), X-major switch ids: id = y*xDim + x.
Topology makeMesh2D(int xDim, int yDim, const GenOptions& opt = {});

/// 3D mesh, id = (z*yDim + y)*xDim + x.
Topology makeMesh3D(int xDim, int yDim, int zDim, const GenOptions& opt = {});

/// 2D torus (wraparound rings; a dimension of size 2 gets a single link,
/// size 1 gets none).
Topology makeTorus2D(int xDim, int yDim, const GenOptions& opt = {});

/// 3D torus (the paper evaluates 4x4x4 and 5x5x5 / 6x6x6 variants).
Topology makeTorus3D(int xDim, int yDim, int zDim, const GenOptions& opt = {});

/// Coordinate helpers shared with the mesh/torus routing algorithms.
struct MeshShape {
  int x = 1, y = 1, z = 1;
  [[nodiscard]] int index(int cx, int cy, int cz) const { return (cz * y + cy) * x + cx; }
  [[nodiscard]] int xOf(int id) const { return id % x; }
  [[nodiscard]] int yOf(int id) const { return (id / x) % y; }
  [[nodiscard]] int zOf(int id) const { return id / (x * y); }
};

}  // namespace sdt::topo
