// OpenFlow-style flow table: priority-ordered match/action entries.
//
// This models the subset of OpenFlow 1.3 that SDT relies on (paper §III-B,
// §V, §VII-B): matching on ingress port and the IP 5-tuple, with OUTPUT /
// SET_QUEUE / DROP actions, plus table-capacity accounting (§VII-C: flow
// table entries are the scarce resource on commodity switches).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/result.hpp"

namespace sdt::openflow {

/// Header fields a switch matches on. Addresses are opaque 32-bit ids
/// (the testbed assigns one "IP" per host); `inPort` is the physical
/// ingress port on the switch doing the lookup.
struct PacketHeader {
  int inPort = -1;
  std::uint32_t srcAddr = 0;
  std::uint32_t dstAddr = 0;
  std::uint16_t srcPort = 0;
  std::uint16_t dstPort = 0;
  std::uint8_t protocol = 0;
  std::uint8_t trafficClass = 0;  ///< DSCP-like priority class (0-7)
};

/// Exact-or-wildcard match on each field (nullopt = wildcard).
struct Match {
  std::optional<int> inPort;
  std::optional<std::uint32_t> srcAddr;
  std::optional<std::uint32_t> dstAddr;
  std::optional<std::uint16_t> srcPort;
  std::optional<std::uint16_t> dstPort;
  std::optional<std::uint8_t> protocol;
  std::optional<std::uint8_t> trafficClass;

  [[nodiscard]] bool matches(const PacketHeader& h) const {
    return (!inPort || *inPort == h.inPort) && (!srcAddr || *srcAddr == h.srcAddr) &&
           (!dstAddr || *dstAddr == h.dstAddr) && (!srcPort || *srcPort == h.srcPort) &&
           (!dstPort || *dstPort == h.dstPort) && (!protocol || *protocol == h.protocol) &&
           (!trafficClass || *trafficClass == h.trafficClass);
  }

  /// Number of concrete fields (diagnostics; more-specific-first audits).
  [[nodiscard]] int specificity() const;

  [[nodiscard]] std::string describe() const;
};

enum class ActionType {
  kOutput,    ///< forward out of port `arg`
  kSetQueue,  ///< enqueue on priority queue `arg` of the output port
  kSetVc,     ///< set virtual channel `arg` (deadlock avoidance, §VI-E)
  kDrop,
};

struct Action {
  ActionType type = ActionType::kDrop;
  int arg = 0;

  static Action output(int port) { return {ActionType::kOutput, port}; }
  static Action setQueue(int queue) { return {ActionType::kSetQueue, queue}; }
  static Action setVc(int vc) { return {ActionType::kSetVc, vc}; }
  static Action drop() { return {ActionType::kDrop, 0}; }
};

struct FlowEntry {
  int priority = 0;  ///< higher wins
  Match match;
  std::vector<Action> actions;
  std::uint64_t cookie = 0;  ///< controller-assigned id for bulk delete

  // Per-entry counters (OpenFlow flow stats).
  mutable std::uint64_t packetCount = 0;
  mutable std::uint64_t byteCount = 0;
};

/// Priority-ordered table with a hard capacity (mirrors TCAM limits).
class FlowTable {
 public:
  explicit FlowTable(std::size_t capacity = 4096) : capacity_(capacity) {}

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] bool full() const { return entries_.size() >= capacity_; }

  /// Insert; fails when the table is full (the controller's capacity
  /// checker must prevent this, §VII-C).
  Status<Error> add(FlowEntry entry);

  /// Remove all entries with the given cookie; returns how many.
  std::size_t removeByCookie(std::uint64_t cookie);

  void clear() { entries_.clear(); }

  /// Highest-priority matching entry; ties broken by insertion order
  /// (first inserted wins, like OpenFlow's unspecified-but-stable practice).
  /// Updates the entry's counters when `bytes` >= 0.
  [[nodiscard]] const FlowEntry* lookup(const PacketHeader& header,
                                        std::int64_t bytes = -1) const;

  [[nodiscard]] const std::vector<FlowEntry>& entries() const { return entries_; }

 private:
  std::size_t capacity_;
  std::vector<FlowEntry> entries_;  // kept sorted by descending priority
};

}  // namespace sdt::openflow
