// OpenFlow-style flow table: priority-ordered match/action entries.
//
// This models the subset of OpenFlow 1.3 that SDT relies on (paper §III-B,
// §V, §VII-B): matching on ingress port and the IP 5-tuple, with OUTPUT /
// SET_QUEUE / DROP actions, plus table-capacity accounting (§VII-C: flow
// table entries are the scarce resource on commodity switches).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.hpp"

namespace sdt::openflow {

/// Rule epochs (consistent updates, Reitblatt-style): the controller stamps
/// every entry's cookie with the configuration epoch it belongs to, so a
/// two-phase reconfiguration can hold epoch-N and epoch-N+1 rule sets side
/// by side, bulk-delete one, and attribute every forwarding decision to
/// exactly one configuration. Epoch 0 is the wildcard: a rule (or header)
/// with epoch 0 matches any epoch — which is also what every pre-epoch
/// cookie value decodes to, so legacy tables behave exactly as before.
inline constexpr std::uint64_t makeCookie(std::uint32_t epoch, std::uint32_t tag) {
  return static_cast<std::uint64_t>(epoch) << 32 | tag;
}
inline constexpr std::uint32_t cookieEpoch(std::uint64_t cookie) {
  return static_cast<std::uint32_t>(cookie >> 32);
}
inline constexpr std::uint32_t cookieTag(std::uint64_t cookie) {
  return static_cast<std::uint32_t>(cookie);
}

/// Tenant namespacing (multi-tenant slicing): the 32-bit epoch splits into a
/// 16-bit tenant id (high half) and a 16-bit tenant-local epoch (low half),
/// so a cookie reads tenant<<48 | epoch<<32 | tag. Tenant 0 is the legacy
/// whole-plant namespace: every pre-tenancy epoch value decodes to tenant 0,
/// and all epoch machinery (lookup gating, removeByEpoch, purity audits)
/// works on scoped epochs unchanged — two tenants' epochs can never collide
/// because the tenant bits differ.
inline constexpr std::uint32_t makeScopedEpoch(std::uint16_t tenant,
                                               std::uint16_t localEpoch) {
  return static_cast<std::uint32_t>(tenant) << 16 | localEpoch;
}
inline constexpr std::uint16_t epochTenant(std::uint32_t epoch) {
  return static_cast<std::uint16_t>(epoch >> 16);
}
inline constexpr std::uint16_t epochLocal(std::uint32_t epoch) {
  return static_cast<std::uint16_t>(epoch);
}
inline constexpr std::uint16_t cookieTenant(std::uint64_t cookie) {
  return epochTenant(cookieEpoch(cookie));
}

/// Header fields a switch matches on. Addresses are opaque 32-bit ids
/// (the testbed assigns one "IP" per host); `inPort` is the physical
/// ingress port on the switch doing the lookup.
struct PacketHeader {
  int inPort = -1;
  std::uint32_t srcAddr = 0;
  std::uint32_t dstAddr = 0;
  std::uint16_t srcPort = 0;
  std::uint16_t dstPort = 0;
  std::uint8_t protocol = 0;
  std::uint8_t trafficClass = 0;  ///< DSCP-like priority class (0-7)
  /// Configuration epoch the packet was stamped with at ingress (0 =
  /// unstamped: matches rules of any epoch, the pre-epoch behaviour).
  std::uint32_t epoch = 0;
};

/// Exact-or-wildcard match on each field (nullopt = wildcard).
struct Match {
  std::optional<int> inPort;
  std::optional<std::uint32_t> srcAddr;
  std::optional<std::uint32_t> dstAddr;
  std::optional<std::uint16_t> srcPort;
  std::optional<std::uint16_t> dstPort;
  std::optional<std::uint8_t> protocol;
  std::optional<std::uint8_t> trafficClass;

  [[nodiscard]] bool matches(const PacketHeader& h) const {
    return (!inPort || *inPort == h.inPort) && (!srcAddr || *srcAddr == h.srcAddr) &&
           (!dstAddr || *dstAddr == h.dstAddr) && (!srcPort || *srcPort == h.srcPort) &&
           (!dstPort || *dstPort == h.dstPort) && (!protocol || *protocol == h.protocol) &&
           (!trafficClass || *trafficClass == h.trafficClass);
  }

  /// Number of concrete fields (diagnostics; more-specific-first audits).
  [[nodiscard]] int specificity() const;

  [[nodiscard]] std::string describe() const;

  bool operator==(const Match&) const = default;
};

enum class ActionType {
  kOutput,    ///< forward out of port `arg`
  kSetQueue,  ///< enqueue on priority queue `arg` of the output port
  kSetVc,     ///< set virtual channel `arg` (deadlock avoidance, §VI-E)
  kDrop,
};

struct Action {
  ActionType type = ActionType::kDrop;
  int arg = 0;

  static Action output(int port) { return {ActionType::kOutput, port}; }
  static Action setQueue(int queue) { return {ActionType::kSetQueue, queue}; }
  static Action setVc(int vc) { return {ActionType::kSetVc, vc}; }
  static Action drop() { return {ActionType::kDrop, 0}; }

  bool operator==(const Action&) const = default;
};

struct FlowEntry {
  int priority = 0;  ///< higher wins
  Match match;
  std::vector<Action> actions;
  std::uint64_t cookie = 0;  ///< controller-assigned id for bulk delete

  // Per-entry counters (OpenFlow flow stats), bumped only by the non-const
  // lookupAndCount() path so const lookups stay pure (and therefore safe
  // for concurrent readers).
  std::uint64_t packetCount = 0;
  std::uint64_t byteCount = 0;
};

/// Rule identity: same priority/match/actions/cookie, counters ignored.
/// The controller's incremental table diff (repair) keys on this.
[[nodiscard]] bool sameRule(const FlowEntry& a, const FlowEntry& b);

/// Priority-ordered table with a hard capacity (mirrors TCAM limits).
///
/// Lookup is accelerated by an exact-match hash index keyed on
/// (inPort, dstAddr) — the shape of every LinkProjector-generated entry — so
/// SDT-mode forwarding is O(1) in the table size. Entries that wildcard
/// either keyed field fall back to the priority-ordered linear scan; the two
/// paths are merged by table position so results are identical to a pure
/// scan (test_flow_table runs a randomized differential check).
///
/// The index is rebuilt lazily after mutations. Mutations and lookups must
/// not race; call buildIndex() after the last mutation before sharing the
/// table across concurrent readers.
class FlowTable {
 public:
  explicit FlowTable(std::size_t capacity = 4096) : capacity_(capacity) {}

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] bool full() const { return entries_.size() >= capacity_; }

  /// Insert; fails when the table is full (the controller's capacity
  /// checker must prevent this, §VII-C).
  Status<Error> add(FlowEntry entry);

  /// Remove all entries with the given cookie; returns how many.
  std::size_t removeByCookie(std::uint64_t cookie);

  /// Bulk delete by configuration epoch (an OpenFlow delete with
  /// cookie/cookie-mask selecting the epoch bits); returns how many.
  /// The transactional controller uses this to garbage-collect a committed
  /// transaction's old rules and to roll back an aborted one's new rules
  /// with a single flow-mod per switch.
  std::size_t removeByEpoch(std::uint32_t epoch);

  /// Number of entries whose cookie carries `epoch` (purity audits).
  [[nodiscard]] std::size_t countEpoch(std::uint32_t epoch) const;

  /// Bulk delete every entry owned by `tenant` regardless of local epoch
  /// (slice eviction GC: one cookie-masked delete per switch selecting the
  /// tenant bits); returns how many. Tenant 0 selects legacy entries only.
  std::size_t removeByTenant(std::uint16_t tenant);

  /// Number of entries owned by `tenant` across all of its local epochs.
  [[nodiscard]] std::size_t countTenant(std::uint16_t tenant) const;

  /// restampEpoch() confined to one tenant's rules: rewrite the epoch half
  /// of every entry whose cookie carries tenant `epochTenant(epoch)` to
  /// `epoch`, leaving other tenants' stamps untouched. Tenant-scoped crash
  /// recovery adopts a slice's stale-epoch survivors without perturbing its
  /// neighbors; returns how many entries changed.
  std::size_t restampTenantEpoch(std::uint32_t epoch);

  /// Rewrite the epoch half of every entry's cookie to `epoch` (a single
  /// cookie-rewrite flow-mod per switch, modeling an OFPFC_MODIFY sweep).
  /// Crash recovery uses this to adopt rules that survived a controller
  /// crash under a stale epoch stamp instead of paying a delete+add per
  /// rule; returns how many entries changed. Match fields are untouched,
  /// so the lookup index stays valid.
  std::size_t restampEpoch(std::uint32_t epoch);

  /// Remove the first entry identical to `entry` under sameRule() (an
  /// OpenFlow strict-delete flow-mod); returns whether one was found.
  bool removeExact(const FlowEntry& entry);

  void clear();

  /// Highest-priority matching entry; ties broken by insertion order
  /// (first inserted wins, like OpenFlow's unspecified-but-stable practice).
  /// Pure: never touches flow counters.
  [[nodiscard]] const FlowEntry* lookup(const PacketHeader& header) const;

  /// lookup() plus OpenFlow flow-stats accounting on the matched entry.
  const FlowEntry* lookupAndCount(const PacketHeader& header, std::int64_t bytes);

  /// Force an eager index rebuild (otherwise done lazily on next lookup).
  void buildIndex() const;

  [[nodiscard]] const std::vector<FlowEntry>& entries() const { return entries_; }

  // Cumulative mutation totals (flow-mod accounting for the obs layer).
  // Unlike the entries themselves these survive clear()/reboot: they count
  // operations applied over the table's lifetime, not current state.
  [[nodiscard]] std::uint64_t addsTotal() const { return addsTotal_; }
  [[nodiscard]] std::uint64_t removesTotal() const { return removesTotal_; }
  [[nodiscard]] std::uint64_t restampsTotal() const { return restampsTotal_; }

 private:
  static constexpr std::uint32_t kNoPos = 0xFFFFFFFFu;

  [[nodiscard]] static std::uint64_t indexKey(int inPort, std::uint32_t dstAddr) {
    return static_cast<std::uint64_t>(static_cast<std::uint32_t>(inPort)) << 32 | dstAddr;
  }
  /// Table position of the winning entry, kNoPos on miss.
  [[nodiscard]] std::uint32_t findPos(const PacketHeader& header) const;

  std::size_t capacity_;
  std::vector<FlowEntry> entries_;  // kept sorted by descending priority
  std::uint64_t addsTotal_ = 0;
  std::uint64_t removesTotal_ = 0;
  std::uint64_t restampsTotal_ = 0;

  // Lazily maintained lookup index: positions (ascending == match-preference
  // order) of entries with concrete (inPort, dstAddr), bucketed by that key;
  // everything else lands in residual_ and is scanned.
  mutable std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> index_;
  mutable std::vector<std::uint32_t> residual_;
  mutable bool indexDirty_ = true;
};

}  // namespace sdt::openflow
