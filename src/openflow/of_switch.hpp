// Model of a commodity OpenFlow switch: a port array, one flow table,
// and per-port counters (the Network Monitor module polls these, §V-3).
//
// This class is pure control/data-plane logic with no notion of time; the
// event-driven simulator (sim::) wraps it to add queues, links, and delays.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/result.hpp"
#include "openflow/flow_table.hpp"

namespace sdt::openflow {

/// Per-port rx/tx counters (OpenFlow port stats).
struct PortStats {
  std::uint64_t rxPackets = 0;
  std::uint64_t rxBytes = 0;
  std::uint64_t txPackets = 0;
  std::uint64_t txBytes = 0;
  std::uint64_t txDrops = 0;
};

/// Result of running a header through the pipeline.
struct ForwardDecision {
  bool matched = false;
  bool drop = true;
  int outPort = -1;
  int queue = 0;  ///< priority queue on the egress port
  int vc = -1;    ///< virtual channel override (-1 = keep packet's VC)
  /// Epoch the lookup ran under: the header's stamp, or — for an unstamped
  /// header — this switch's ingress epoch, which the data plane writes back
  /// into the packet so the stamp persists across hops (two-phase updates).
  std::uint32_t stampEpoch = 0;
  /// cookieEpoch() of the matched entry (0 = wildcard rule or table miss);
  /// the consistency checker attributes the hop to a configuration with it.
  std::uint32_t ruleEpoch = 0;
};

/// Flow-stats readback: a copy of everything the controller can learn about
/// a switch's forwarding state over the control channel (an OpenFlow
/// flow-stats + ingress-config request). Crash recovery diffs this against
/// the journaled intent instead of trusting its own (lost) bookkeeping.
struct TableSnapshot {
  std::vector<FlowEntry> entries;
  std::uint32_t ingressEpoch = 0;
  std::uint64_t barriersSeen = 0;
  /// Sparse per-port ingress-epoch overrides (multi-tenant slicing):
  /// (port, epoch) pairs, ascending by port.
  std::vector<std::pair<int, std::uint32_t>> portEpochs;
};

class Switch {
 public:
  Switch(int id, int numPorts, std::size_t tableCapacity = 4096)
      : id_(id), table_(tableCapacity),
        portStats_(static_cast<std::size_t>(numPorts)) {}

  [[nodiscard]] int id() const { return id_; }
  [[nodiscard]] int numPorts() const { return static_cast<int>(portStats_.size()); }

  [[nodiscard]] FlowTable& table() { return table_; }
  [[nodiscard]] const FlowTable& table() const { return table_; }

  /// Run the match/action pipeline. Counts rx on the ingress port and,
  /// when forwarding, tx on the egress port. A table miss drops (SDT
  /// installs no table-miss flood: isolation depends on it, §VI-B).
  /// Unstamped headers (epoch 0) are stamped with ingressEpoch() before the
  /// lookup, pinning the packet to one configuration for its whole path.
  ForwardDecision process(const PacketHeader& header, std::int64_t bytes);

  /// Configuration epoch stamped onto packets entering the network here
  /// (0 = no stamping, the pre-epoch behaviour). Flipping this is the
  /// atomic per-switch commit step of a two-phase update: rules of both
  /// epochs are installed, and the stamp decides which set a packet uses.
  [[nodiscard]] std::uint32_t ingressEpoch() const { return ingressEpoch_; }
  void setIngressEpoch(std::uint32_t epoch) { ingressEpoch_ = epoch; }

  /// Per-port ingress-epoch override (multi-tenant slicing): a switch shared
  /// by several tenants stamps each ingress port with its owning slice's
  /// epoch, so one tenant's epoch flip — a per-port config write — can never
  /// move a neighbor's traffic onto new rules. A port without an override
  /// falls back to the switch-wide ingressEpoch(). Port -1 is rejected.
  void setPortIngressEpoch(int port, std::uint32_t epoch) {
    if (port < 0 || port >= numPorts()) return;
    portEpochs_[port] = epoch;
  }
  void clearPortIngressEpoch(int port) { portEpochs_.erase(port); }
  /// Effective stamping epoch for packets entering at `port`.
  [[nodiscard]] std::uint32_t portIngressEpoch(int port) const {
    const auto it = portEpochs_.find(port);
    return it != portEpochs_.end() ? it->second : ingressEpoch_;
  }
  [[nodiscard]] bool hasPortIngressEpoch(int port) const {
    return portEpochs_.count(port) > 0;
  }

  /// OpenFlow barrier request: all preceding flow-mods are now processed
  /// (trivially true on the model — table edits apply synchronously — but
  /// the *ack* travels back over the unreliable control channel, which is
  /// what the two-phase protocol synchronizes on). Returns the barrier id.
  std::uint64_t barrier() { return ++barriersSeen_; }
  [[nodiscard]] std::uint64_t barriersSeen() const { return barriersSeen_; }

  /// OpenFlow xid dedup: the control channel is at-least-once, so a
  /// flow-mod bundle can be delivered twice (duplicate in flight, or a
  /// retransmit whose original was only slow, not lost). Re-applying a
  /// bundle verbatim is not idempotent — a duplicated strict-delete can
  /// remove a legitimately re-added twin rule — so every mutating bundle
  /// carries a transfer id and the switch refuses re-application. Returns
  /// true the first time an xid is seen (caller should apply), false on a
  /// duplicate (caller should only re-ack).
  bool acceptXid(std::uint64_t xid) {
    const bool fresh = xidsSeen_.insert(xid).second;
    if (!fresh) {
      ++xidDupHits_;
      return false;
    }
    xidOrder_.push_back(xid);
    while (xidOrder_.size() > xidCacheCapacity_) {
      xidsSeen_.erase(xidOrder_.front());
      xidOrder_.pop_front();
    }
    return true;
  }
  [[nodiscard]] bool seenXid(std::uint64_t xid) const {
    return xidsSeen_.count(xid) > 0;
  }
  /// How many duplicate bundles the dedup refused — the visible footprint
  /// of the control channel's at-least-once delivery.
  [[nodiscard]] std::uint64_t xidDupHits() const { return xidDupHits_; }

  /// The dedup cache is bounded (FIFO eviction) so a long-running service
  /// (`sdtctl serve`) cannot leak memory one xid at a time. The window must
  /// comfortably cover the channel's retransmit horizon: a duplicate older
  /// than `capacity` distinct bundles is forgotten and would re-apply.
  [[nodiscard]] std::size_t xidCacheSize() const { return xidOrder_.size(); }
  [[nodiscard]] std::size_t xidCacheCapacity() const { return xidCacheCapacity_; }
  void setXidCacheCapacity(std::size_t capacity) {
    xidCacheCapacity_ = capacity > 0 ? capacity : 1;
    while (xidOrder_.size() > xidCacheCapacity_) {
      xidsSeen_.erase(xidOrder_.front());
      xidOrder_.pop_front();
    }
  }

  /// Controller-term fence (replicated controller HA): every mutating
  /// bundle from a term-aware controller carries the leader's term; the
  /// switch tracks the highest term it has ever admitted and refuses
  /// anything older. A deposed leader that has not yet noticed its lease
  /// expired keeps emitting bundles at the old term — those are the
  /// split-brain writes, and this is the line that stops them. Term 0 is
  /// the legacy single-controller namespace: always admitted, never raises
  /// the fence. Returns true when the bundle may apply.
  ///
  /// `leaderId` breaks ties: two candidates that miss each other's claim
  /// heartbeats can claim the SAME term, and the fence must still pick one
  /// writer — the lower replica id wins, deterministically, on every switch
  /// (mirroring the election's priority order, so switches and replicas
  /// agree on the survivor without coordinating). -1 means "no identity"
  /// (legacy term-only callers): it neither fences ties nor survives them.
  bool admitTerm(std::uint64_t term, int leaderId = -1) {
    if (term == 0) return true;
    if (term < controllerTerm_) {
      ++fencedWrites_;
      return false;
    }
    if (term == controllerTerm_ && leaderId >= 0 && controllerLeaderId_ >= 0 &&
        leaderId > controllerLeaderId_) {
      ++fencedWrites_;
      return false;
    }
    const bool newTerm = term > controllerTerm_;
    controllerTerm_ = term;
    if (newTerm) {
      controllerLeaderId_ = leaderId;
    } else if (leaderId >= 0 &&
               (controllerLeaderId_ < 0 || leaderId < controllerLeaderId_)) {
      controllerLeaderId_ = leaderId;
    }
    return true;
  }
  /// Highest controller term this switch has admitted (0 = never fenced).
  [[nodiscard]] std::uint64_t controllerTerm() const { return controllerTerm_; }
  /// Winning leader id at controllerTerm() (-1 = unknown / term-only caller).
  [[nodiscard]] int controllerLeaderId() const { return controllerLeaderId_; }
  /// How many stale-term bundles the fence rejected — the observable
  /// footprint of a split brain.
  [[nodiscard]] std::uint64_t fencedWrites() const { return fencedWrites_; }

  /// Flow-stats readback over the control channel (crash recovery):
  /// snapshot the table and ingress configuration as of now.
  [[nodiscard]] TableSnapshot snapshot() const {
    TableSnapshot snap{table_.entries(), ingressEpoch_, barriersSeen_, {}};
    snap.portEpochs.assign(portEpochs_.begin(), portEpochs_.end());
    return snap;
  }

  /// Power-cycle: the flow table, ingress-epoch config, barrier counter,
  /// xid cache, and port counters are all volatile on a commodity switch.
  /// Ports come back healthy — the cure is reinstalling state, which is
  /// exactly what makes an un-noticed reboot a silent black hole until the
  /// controller reads the (empty) table back.
  void reboot() {
    table_.clear();
    ingressEpoch_ = 0;
    portEpochs_.clear();
    barriersSeen_ = 0;
    xidsSeen_.clear();
    xidOrder_.clear();
    xidDupHits_ = 0;
    controllerTerm_ = 0;
    controllerLeaderId_ = -1;
    fencedWrites_ = 0;
    resetStats();
  }

  [[nodiscard]] const PortStats& portStats(int port) const { return portStats_[port]; }
  [[nodiscard]] const std::vector<PortStats>& allPortStats() const { return portStats_; }
  void resetStats();

 private:
  int id_;
  FlowTable table_;
  std::vector<PortStats> portStats_;
  std::uint32_t ingressEpoch_ = 0;
  /// Sparse per-port overrides; ordered so snapshots list ports ascending.
  std::map<int, std::uint32_t> portEpochs_;
  std::uint64_t barriersSeen_ = 0;
  std::uint64_t xidDupHits_ = 0;
  std::unordered_set<std::uint64_t> xidsSeen_;
  /// Insertion order backing FIFO eviction of xidsSeen_.
  std::deque<std::uint64_t> xidOrder_;
  std::size_t xidCacheCapacity_ = 4096;
  std::uint64_t controllerTerm_ = 0;
  int controllerLeaderId_ = -1;
  std::uint64_t fencedWrites_ = 0;
};

}  // namespace sdt::openflow
