#include "openflow/flow_table.hpp"

#include <algorithm>

#include "common/strings.hpp"

namespace sdt::openflow {

int Match::specificity() const {
  int n = 0;
  n += inPort.has_value();
  n += srcAddr.has_value();
  n += dstAddr.has_value();
  n += srcPort.has_value();
  n += dstPort.has_value();
  n += protocol.has_value();
  n += trafficClass.has_value();
  return n;
}

std::string Match::describe() const {
  std::string out = "{";
  const auto field = [&](const char* name, auto opt) {
    if (opt) out += strFormat("%s=%lld ", name, static_cast<long long>(*opt));
  };
  field("in", inPort);
  field("src", srcAddr);
  field("dst", dstAddr);
  field("sport", srcPort);
  field("dport", dstPort);
  field("proto", protocol);
  field("tc", trafficClass);
  if (out.back() == ' ') out.pop_back();
  out += "}";
  return out;
}

Status<Error> FlowTable::add(FlowEntry entry) {
  if (full()) {
    return makeError(strFormat("flow table full (%zu entries)", capacity_));
  }
  // Insert after all entries of >= priority, preserving stable order.
  const auto pos = std::find_if(entries_.begin(), entries_.end(), [&](const FlowEntry& e) {
    return e.priority < entry.priority;
  });
  entries_.insert(pos, std::move(entry));
  return {};
}

std::size_t FlowTable::removeByCookie(std::uint64_t cookie) {
  const auto it = std::remove_if(entries_.begin(), entries_.end(), [&](const FlowEntry& e) {
    return e.cookie == cookie;
  });
  const auto removed = static_cast<std::size_t>(entries_.end() - it);
  entries_.erase(it, entries_.end());
  return removed;
}

const FlowEntry* FlowTable::lookup(const PacketHeader& header, std::int64_t bytes) const {
  for (const FlowEntry& e : entries_) {
    if (e.match.matches(header)) {
      if (bytes >= 0) {
        ++e.packetCount;
        e.byteCount += static_cast<std::uint64_t>(bytes);
      }
      return &e;
    }
  }
  return nullptr;
}

}  // namespace sdt::openflow
