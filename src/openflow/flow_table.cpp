#include "openflow/flow_table.hpp"

#include <algorithm>

#include "common/strings.hpp"

namespace sdt::openflow {

int Match::specificity() const {
  int n = 0;
  n += inPort.has_value();
  n += srcAddr.has_value();
  n += dstAddr.has_value();
  n += srcPort.has_value();
  n += dstPort.has_value();
  n += protocol.has_value();
  n += trafficClass.has_value();
  return n;
}

std::string Match::describe() const {
  std::string out = "{";
  const auto field = [&](const char* name, auto opt) {
    if (opt) out += strFormat("%s=%lld ", name, static_cast<long long>(*opt));
  };
  field("in", inPort);
  field("src", srcAddr);
  field("dst", dstAddr);
  field("sport", srcPort);
  field("dport", dstPort);
  field("proto", protocol);
  field("tc", trafficClass);
  if (out.back() == ' ') out.pop_back();
  out += "}";
  return out;
}

bool sameRule(const FlowEntry& a, const FlowEntry& b) {
  return a.priority == b.priority && a.cookie == b.cookie && a.match == b.match &&
         a.actions == b.actions;
}

Status<Error> FlowTable::add(FlowEntry entry) {
  if (full()) {
    return makeError(strFormat("flow table full (%zu entries)", capacity_));
  }
  // Insert after all entries of >= priority, preserving stable order.
  const auto pos = std::find_if(entries_.begin(), entries_.end(), [&](const FlowEntry& e) {
    return e.priority < entry.priority;
  });
  entries_.insert(pos, std::move(entry));
  indexDirty_ = true;
  ++addsTotal_;
  return {};
}

std::size_t FlowTable::removeByCookie(std::uint64_t cookie) {
  const auto it = std::remove_if(entries_.begin(), entries_.end(), [&](const FlowEntry& e) {
    return e.cookie == cookie;
  });
  const auto removed = static_cast<std::size_t>(entries_.end() - it);
  entries_.erase(it, entries_.end());
  indexDirty_ = indexDirty_ || removed > 0;
  removesTotal_ += removed;
  return removed;
}

std::size_t FlowTable::removeByEpoch(std::uint32_t epoch) {
  const auto it = std::remove_if(entries_.begin(), entries_.end(), [&](const FlowEntry& e) {
    return cookieEpoch(e.cookie) == epoch;
  });
  const auto removed = static_cast<std::size_t>(entries_.end() - it);
  entries_.erase(it, entries_.end());
  indexDirty_ = indexDirty_ || removed > 0;
  removesTotal_ += removed;
  return removed;
}

std::size_t FlowTable::removeByTenant(std::uint16_t tenant) {
  const auto it = std::remove_if(entries_.begin(), entries_.end(), [&](const FlowEntry& e) {
    return cookieTenant(e.cookie) == tenant;
  });
  const auto removed = static_cast<std::size_t>(entries_.end() - it);
  entries_.erase(it, entries_.end());
  indexDirty_ = indexDirty_ || removed > 0;
  removesTotal_ += removed;
  return removed;
}

std::size_t FlowTable::countTenant(std::uint16_t tenant) const {
  return static_cast<std::size_t>(
      std::count_if(entries_.begin(), entries_.end(), [&](const FlowEntry& e) {
        return cookieTenant(e.cookie) == tenant;
      }));
}

std::size_t FlowTable::restampTenantEpoch(std::uint32_t epoch) {
  const std::uint16_t tenant = epochTenant(epoch);
  std::size_t changed = 0;
  for (FlowEntry& e : entries_) {
    if (cookieTenant(e.cookie) != tenant) continue;
    if (cookieEpoch(e.cookie) == epoch) continue;
    e.cookie = makeCookie(epoch, cookieTag(e.cookie));
    ++changed;
  }
  restampsTotal_ += changed;
  return changed;
}

std::size_t FlowTable::restampEpoch(std::uint32_t epoch) {
  std::size_t changed = 0;
  for (FlowEntry& e : entries_) {
    if (cookieEpoch(e.cookie) == epoch) continue;
    e.cookie = makeCookie(epoch, cookieTag(e.cookie));
    ++changed;
  }
  restampsTotal_ += changed;
  return changed;
}

std::size_t FlowTable::countEpoch(std::uint32_t epoch) const {
  return static_cast<std::size_t>(
      std::count_if(entries_.begin(), entries_.end(), [&](const FlowEntry& e) {
        return cookieEpoch(e.cookie) == epoch;
      }));
}

bool FlowTable::removeExact(const FlowEntry& entry) {
  const auto it = std::find_if(entries_.begin(), entries_.end(), [&](const FlowEntry& e) {
    return sameRule(e, entry);
  });
  if (it == entries_.end()) return false;
  entries_.erase(it);
  indexDirty_ = true;
  ++removesTotal_;
  return true;
}

void FlowTable::clear() {
  removesTotal_ += entries_.size();
  entries_.clear();
  indexDirty_ = true;
}

void FlowTable::buildIndex() const {
  index_.clear();
  residual_.clear();
  for (std::uint32_t pos = 0; pos < entries_.size(); ++pos) {
    const Match& m = entries_[pos].match;
    if (m.inPort && m.dstAddr) {
      index_[indexKey(*m.inPort, *m.dstAddr)].push_back(pos);
    } else {
      residual_.push_back(pos);
    }
  }
  indexDirty_ = false;
}

std::uint32_t FlowTable::findPos(const PacketHeader& header) const {
  if (indexDirty_) buildIndex();
  // Epoch gate (consistent updates): a stamped header matches only rules of
  // its own epoch or epoch-wildcard rules; an unstamped header (epoch 0)
  // matches everything, preserving pre-epoch behaviour.
  const auto epochOk = [&](const FlowEntry& e) {
    const std::uint32_t re = cookieEpoch(e.cookie);
    return header.epoch == 0 || re == 0 || re == header.epoch;
  };
  std::uint32_t best = kNoPos;
  const auto bucket = index_.find(indexKey(header.inPort, header.dstAddr));
  if (bucket != index_.end()) {
    // Positions are ascending, i.e. in match-preference order: the first
    // full match in the bucket is the best indexed candidate.
    for (const std::uint32_t pos : bucket->second) {
      if (epochOk(entries_[pos]) && entries_[pos].match.matches(header)) {
        best = pos;
        break;
      }
    }
  }
  for (const std::uint32_t pos : residual_) {
    if (pos >= best) break;  // ascending: cannot beat the indexed winner
    if (epochOk(entries_[pos]) && entries_[pos].match.matches(header)) {
      best = pos;
      break;
    }
  }
  return best;
}

const FlowEntry* FlowTable::lookup(const PacketHeader& header) const {
  const std::uint32_t pos = findPos(header);
  return pos == kNoPos ? nullptr : &entries_[pos];
}

const FlowEntry* FlowTable::lookupAndCount(const PacketHeader& header, std::int64_t bytes) {
  const std::uint32_t pos = findPos(header);
  if (pos == kNoPos) return nullptr;
  FlowEntry& e = entries_[pos];
  ++e.packetCount;
  e.byteCount += static_cast<std::uint64_t>(bytes);
  return &e;
}

}  // namespace sdt::openflow
