#include "openflow/of_switch.hpp"

#include <cassert>

namespace sdt::openflow {

ForwardDecision Switch::process(const PacketHeader& header, std::int64_t bytes) {
  assert(header.inPort >= 0 && header.inPort < numPorts());
  PortStats& in = portStats_[header.inPort];
  ++in.rxPackets;
  in.rxBytes += static_cast<std::uint64_t>(bytes);

  // Ingress epoch stamping: a packet entering the network unstamped is
  // pinned to this switch's current configuration epoch; stamped packets
  // keep their stamp, so mid-path hops look up the epoch the packet
  // started under (per-packet consistency, Reitblatt-style).
  PacketHeader stamped = header;
  if (stamped.epoch == 0) stamped.epoch = portIngressEpoch(header.inPort);

  ForwardDecision decision;
  decision.stampEpoch = stamped.epoch;
  const FlowEntry* entry = table_.lookupAndCount(stamped, bytes);
  if (entry == nullptr) return decision;  // table miss -> drop

  decision.matched = true;
  decision.ruleEpoch = cookieEpoch(entry->cookie);
  for (const Action& a : entry->actions) {
    switch (a.type) {
      case ActionType::kOutput:
        decision.drop = false;
        decision.outPort = a.arg;
        break;
      case ActionType::kSetQueue:
        decision.queue = a.arg;
        break;
      case ActionType::kSetVc:
        decision.vc = a.arg;
        break;
      case ActionType::kDrop:
        decision.drop = true;
        decision.outPort = -1;
        break;
    }
  }
  if (!decision.drop) {
    assert(decision.outPort >= 0 && decision.outPort < numPorts());
    PortStats& out = portStats_[decision.outPort];
    ++out.txPackets;
    out.txBytes += static_cast<std::uint64_t>(bytes);
  } else if (decision.matched) {
    ++in.txDrops;
  }
  return decision;
}

void Switch::resetStats() {
  for (PortStats& s : portStats_) s = PortStats{};
}

}  // namespace sdt::openflow
