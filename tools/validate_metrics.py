#!/usr/bin/env python3
"""Validate an obs metrics JSON export against metrics.schema.json.

CI runners don't ship the jsonschema package, so this implements the small
JSON-Schema subset the schema actually uses (type, enum, required,
properties, additionalProperties, items, minimum), then runs a semantic
pass the schema language can't express: each family's values must carry
exactly the fields its kind implies, histogram bucket counts must sum to
the observation count, and ring-series samples must be in non-decreasing
simulated-time order.

Usage: validate_metrics.py <schema.json> <export.json>
Exits non-zero with one line per violation.
"""
import json
import sys

_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "boolean": bool,
    "null": type(None),
}


def _is_type(value, name):
    if name == "number":
        return isinstance(value, (int, float)) and not isinstance(value, bool)
    if name == "integer":
        # 5.0 exported by a C++ double-renderer still counts as integral.
        return (isinstance(value, int) and not isinstance(value, bool)) or (
            isinstance(value, float) and value.is_integer())
    return isinstance(value, _TYPES[name])


def validate(value, schema, path, errors):
    if "type" in schema and not _is_type(value, schema["type"]):
        errors.append(f"{path}: expected {schema['type']}, got {type(value).__name__}")
        return
    if "enum" in schema and value not in schema["enum"]:
        errors.append(f"{path}: {value!r} not one of {schema['enum']}")
    if "minimum" in schema and isinstance(value, (int, float)) and value < schema["minimum"]:
        errors.append(f"{path}: {value} < minimum {schema['minimum']}")
    if isinstance(value, dict):
        for key in schema.get("required", []):
            if key not in value:
                errors.append(f"{path}: missing required key '{key}'")
        props = schema.get("properties", {})
        extra = schema.get("additionalProperties", True)
        for key, sub in value.items():
            if key in props:
                validate(sub, props[key], f"{path}.{key}", errors)
            elif isinstance(extra, dict):
                validate(sub, extra, f"{path}.{key}", errors)
            elif extra is False:
                errors.append(f"{path}: unexpected key '{key}'")
    if isinstance(value, list) and "items" in schema:
        for i, item in enumerate(value):
            validate(item, schema["items"], f"{path}[{i}]", errors)


_KIND_FIELDS = {
    "counter": {"value"},
    "gauge": {"value"},
    "histogram": {"count", "sum", "buckets"},
    "series": {"capacity", "recorded", "dropped", "samples"},
}


def semantic_pass(export, errors):
    for name, family in export.items():
        kind = family.get("kind")
        want = _KIND_FIELDS.get(kind)
        if want is None:
            continue  # the schema pass already flagged it
        for i, cell in enumerate(family.get("values", [])):
            path = f"$.{name}.values[{i}]"
            have = set(cell) - {"labels"}
            if have != want:
                errors.append(f"{path}: kind '{kind}' needs fields {sorted(want)}, "
                              f"has {sorted(have)}")
                continue
            if kind == "histogram":
                total = sum(b["count"] for b in cell["buckets"])
                if total != cell["count"]:
                    errors.append(f"{path}: bucket counts sum to {total}, "
                                  f"count says {cell['count']}")
                if not cell["buckets"] or cell["buckets"][-1].get("le") != "+Inf":
                    errors.append(f"{path}: last bucket must be le=+Inf")
            if kind == "series":
                times = [s[0] for s in cell["samples"]]
                if times != sorted(times):
                    errors.append(f"{path}: samples out of simulated-time order")
                if len(cell["samples"]) > cell["capacity"]:
                    errors.append(f"{path}: more samples than capacity")


def main():
    if len(sys.argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    with open(sys.argv[1]) as f:
        schema = json.load(f)
    with open(sys.argv[2]) as f:
        export = json.load(f)
    errors = []
    validate(export, schema, "$", errors)
    if not errors:  # shape must hold before semantics make sense
        semantic_pass(export, errors)
    if not isinstance(export, dict) or not export:
        errors.append("$: export is empty — no metric families collected")
    for e in errors:
        print(f"FAIL {e}", file=sys.stderr)
    if errors:
        return 1
    print(f"OK {sys.argv[2]}: {len(export)} metric families valid")
    return 0


if __name__ == "__main__":
    sys.exit(main())
